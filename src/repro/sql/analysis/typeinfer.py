"""Type inference over the TweeQL expression AST.

Infers a :class:`SqlType` for every expression against the stream schema
and the typed UDF signatures on :class:`~repro.engine.functions.FunctionSpec`
(``arg_types`` / ``return_type``), reporting mismatches as ``TQL1xx``
diagnostics instead of letting them surface as runtime ``TypeError`` deep
inside a long-running stream query.

Severity policy mirrors what the engine would actually do at runtime:

- arithmetic on definitively non-numeric operands (``TQL101``) is an
  *error* — the evaluator's ``+``/``-`` do not guard ``TypeError``, so the
  first matching tuple kills the query mid-stream;
- comparisons between incompatible types (``TQL102``), argument-type
  mismatches (``TQL104``), text operators on non-strings (``TQL105``), and
  truthiness-reliant predicates (``TQL106``) are *warnings* — the engine
  degrades them to NULL/coercion, so they run but rarely mean what the
  author intended.

The inferencer never raises: every problem becomes a diagnostic and
inference continues with ``ANY`` so one query reports all its problems in
a single pass.
"""

from __future__ import annotations

import difflib
import enum

from repro.engine.aggregates import AGGREGATE_NAMES
from repro.engine.functions import FunctionRegistry, FunctionSpec
from repro.sql import ast
from repro.sql.analysis.diagnostics import DiagnosticSink, Severity
from repro.sql.ast import Span, span_of


class SqlType(enum.Enum):
    """The analyzer's value types (dynamic rows; this is a best-effort
    static view, with ``ANY`` for fields the schema says nothing about)."""

    BOOLEAN = "boolean"
    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    POINT = "point"
    LIST = "list"
    NULL = "null"
    ANY = "any"

    @property
    def known(self) -> bool:
        """True when the type is definite (not ANY/NULL)."""
        return self not in (SqlType.ANY, SqlType.NULL)

    @property
    def numeric(self) -> bool:
        return self in (SqlType.INTEGER, SqlType.FLOAT)


#: Field name → type for the well-known tweet-schema columns. Registered
#: sources reusing these names get the same types; anything else is ANY.
KNOWN_FIELD_TYPES: dict[str, SqlType] = {
    "tweet_id": SqlType.INTEGER,
    "text": SqlType.STRING,
    "loc": SqlType.STRING,
    "created_at": SqlType.FLOAT,
    "user_id": SqlType.INTEGER,
    "screen_name": SqlType.STRING,
    "geo_lat": SqlType.FLOAT,
    "geo_lon": SqlType.FLOAT,
    "location": SqlType.POINT,
    "lang": SqlType.STRING,
    "followers": SqlType.INTEGER,
    "window_start": SqlType.FLOAT,
    "window_end": SqlType.FLOAT,
    "window_rows": SqlType.INTEGER,
}


def field_types_for(schema: tuple[str, ...]) -> dict[str, SqlType]:
    """Schema column → inferred type, defaulting to ANY."""
    return {
        name.lower(): KNOWN_FIELD_TYPES.get(name.lower(), SqlType.ANY)
        for name in schema
    }


#: Aggregate → result type; None means "same as the argument".
_AGGREGATE_RESULT: dict[str, SqlType | None] = {
    "count": SqlType.INTEGER,
    "sum": SqlType.FLOAT,
    "avg": SqlType.FLOAT,
    "stddev": SqlType.FLOAT,
    "min": None,
    "max": None,
    "first": None,
    "last": None,
}

#: Aggregates whose accumulator calls ``float()`` on every input.
_NUMERIC_AGGREGATES = frozenset({"sum", "avg", "stddev"})

_DECLARED: dict[str, tuple[SqlType, ...]] = {
    "boolean": (SqlType.BOOLEAN,),
    "integer": (SqlType.INTEGER,),
    "float": (SqlType.FLOAT,),
    "number": (SqlType.INTEGER, SqlType.FLOAT),
    "string": (SqlType.STRING,),
    "point": (SqlType.POINT,),
    "list": (SqlType.LIST,),
    "any": (),
}


def _accepts(declared: str, actual: SqlType) -> bool:
    """Whether a declared signature slot accepts an inferred type."""
    allowed = _DECLARED.get(declared, ())
    if not allowed:  # "any" or unrecognized declaration
        return True
    if not actual.known:
        return True
    return actual in allowed


def _declared_return(declared: str | None) -> SqlType:
    if declared is None:
        return SqlType.ANY
    if declared == "number":
        return SqlType.FLOAT
    try:
        return SqlType(declared)
    except ValueError:
        return SqlType.ANY


def suggest(name: str, candidates: tuple[str, ...]) -> str | None:
    """A did-you-mean hint, or None when nothing is close."""
    matches = difflib.get_close_matches(name.lower(), candidates, n=1, cutoff=0.6)
    return f"did you mean {matches[0]!r}?" if matches else None


class TypeInferencer:
    """Infers expression types, reporting problems to a sink.

    Args:
        registry: function registry whose specs carry typed signatures.
        field_types: lowercase field name → type (see
            :func:`field_types_for`).
        sink: diagnostics collector.
        aliases: select-alias name → inferred type, for clauses where the
            engine resolves aliases (GROUP BY / HAVING / ORDER BY).
        allow_aggregates: whether aggregate calls are legal in the
            expression being inferred (SELECT/HAVING/ORDER BY of an
            aggregate query).
    """

    def __init__(
        self,
        registry: FunctionRegistry,
        field_types: dict[str, SqlType],
        sink: DiagnosticSink,
        aliases: dict[str, SqlType] | None = None,
        allow_aggregates: bool = False,
    ) -> None:
        self._registry = registry
        self._fields = field_types
        self._sink = sink
        self._aliases = aliases or {}
        self._allow_aggregates = allow_aggregates

    # -- public API ----------------------------------------------------------

    def infer(self, expr: ast.Expr) -> SqlType:
        """The expression's type; problems are reported, never raised."""
        if isinstance(expr, ast.Literal):
            return self._literal_type(expr)
        if isinstance(expr, ast.FieldRef):
            return self._field_type(expr)
        if isinstance(expr, ast.Star):
            self._sink.error(
                "TQL203",
                "'*' is only valid in SELECT lists and COUNT(*)",
                span_of(expr),
            )
            return SqlType.ANY
        if isinstance(expr, ast.FuncCall):
            return self._call_type(expr)
        if isinstance(expr, ast.UnaryOp):
            return self._unary_type(expr)
        if isinstance(expr, ast.BinaryOp):
            return self._binary_type(expr)
        if isinstance(expr, ast.InList):
            return self._in_list_type(expr)
        if isinstance(expr, ast.BBox):
            return SqlType.ANY  # a box literal; checked by semantic pass
        return SqlType.ANY

    # -- leaves --------------------------------------------------------------

    @staticmethod
    def _literal_type(node: ast.Literal) -> SqlType:
        value = node.value
        if value is None:
            return SqlType.NULL
        if isinstance(value, bool):
            return SqlType.BOOLEAN
        if isinstance(value, int):
            return SqlType.INTEGER
        if isinstance(value, float):
            return SqlType.FLOAT
        return SqlType.STRING

    def _field_type(self, node: ast.FieldRef) -> SqlType:
        key = node.name.lower()
        if key in self._fields:
            return self._fields[key]
        if node.name in self._aliases:
            return self._aliases[node.name]
        lowered = {name.lower(): t for name, t in self._aliases.items()}
        if key in lowered:
            return lowered[key]
        available = tuple(sorted(set(self._fields) | set(self._aliases)))
        self._sink.add(
            "TQL201",
            Severity.ERROR,
            f"unknown field: {node.name!r} (available: {', '.join(available)})",
            span_of(node),
            suggest(node.name, available),
            payload={"name": node.name, "available": available},
        )
        return SqlType.ANY

    # -- calls ---------------------------------------------------------------

    def _call_type(self, node: ast.FuncCall) -> SqlType:
        span = span_of(node)
        if node.name in AGGREGATE_NAMES:
            return self._aggregate_type(node, span)
        if node.name not in self._registry:
            candidates = self._registry.names() + tuple(sorted(AGGREGATE_NAMES))
            hint = suggest(node.name, candidates)
            self._sink.error(
                "TQL202",
                f"unknown function: {node.name!r}",
                span,
                hint,
                payload={"name": node.name, "hint": hint},
            )
            for arg in node.args:
                self.infer(arg)
            return SqlType.ANY
        spec = self._registry.lookup(node.name)
        arg_types = [self.infer(arg) for arg in node.args]
        self._check_signature(node, spec, arg_types, span)
        return _declared_return(spec.return_type)

    def _check_signature(
        self,
        node: ast.FuncCall,
        spec: FunctionSpec,
        arg_types: list[SqlType],
        span: Span | None,
    ) -> None:
        if node.distinct:
            # The engine silently ignores DISTINCT on scalar calls.
            self._sink.warning(
                "TQL211",
                f"DISTINCT has no effect on scalar function {node.name}()",
                span,
            )
        if spec.arg_types is None:
            return  # untyped UDF: nothing to check
        declared = spec.arg_types
        low = spec.min_args if spec.min_args is not None else len(declared)
        high = None if spec.variadic else len(declared)
        n = len(arg_types)
        if n < low or (high is not None and n > high):
            if high is None:
                expected = f"at least {low}"
            elif low == high:
                expected = str(low)
            else:
                expected = f"{low} to {high}"
            self._sink.error(
                "TQL103",
                f"{node.name}() expects {expected} argument"
                f"{'s' if expected != '1' else ''}, got {n}",
                span,
            )
        for index, actual in enumerate(arg_types):
            slot = declared[min(index, len(declared) - 1)] if declared else "any"
            if not _accepts(slot, actual):
                arg_span = span_of(node.args[index]) or span
                self._sink.warning(
                    "TQL104",
                    f"{node.name}() argument {index + 1} expects {slot}, "
                    f"got {actual.value}",
                    arg_span,
                )

    def _aggregate_type(self, node: ast.FuncCall, span: Span | None) -> SqlType:
        if not self._allow_aggregates:
            self._sink.error(
                "TQL203",
                f"aggregate {node.name}() is not allowed here; aggregates "
                "belong in the SELECT list or HAVING of a windowed query",
                span,
            )
        if len(node.args) != 1:
            self._sink.error(
                "TQL211",
                f"aggregate {node.name}() takes exactly one argument",
                span,
            )
            for arg in node.args:
                if not isinstance(arg, ast.Star):
                    self._nested(node).infer(arg)
            return _declared_return_for_aggregate(node.name, SqlType.ANY)
        arg = node.args[0]
        if isinstance(arg, ast.Star):
            if node.name != "count":
                self._sink.error(
                    "TQL211",
                    f"only COUNT accepts '*', not {node.name}",
                    span,
                )
            arg_type = SqlType.ANY
        else:
            arg_type = self._nested(node).infer(arg)
        if node.distinct and node.name != "count":
            self._sink.error(
                "TQL211",
                f"DISTINCT is only supported with COUNT, not {node.name}",
                span,
            )
        if node.name in _NUMERIC_AGGREGATES and arg_type.known and not arg_type.numeric:
            self._sink.warning(
                "TQL104",
                f"{node.name}() expects a numeric argument, got {arg_type.value}",
                span_of(arg) or span,
            )
        return _declared_return_for_aggregate(node.name, arg_type)

    def _nested(self, _node: ast.FuncCall) -> "TypeInferencer":
        """Inferencer for aggregate arguments (no nested aggregates)."""
        return TypeInferencer(
            self._registry, self._fields, self._sink,
            aliases=self._aliases, allow_aggregates=False,
        )

    # -- operators -----------------------------------------------------------

    def _unary_type(self, node: ast.UnaryOp) -> SqlType:
        inner = self.infer(node.operand)
        if node.op in ("IS NULL", "IS NOT NULL", "NOT"):
            return SqlType.BOOLEAN
        if node.op == "NEG":
            if inner.known and not inner.numeric:
                self._sink.error(
                    "TQL101",
                    f"cannot negate a {inner.value} value",
                    span_of(node),
                )
                return SqlType.ANY
            return inner if inner.numeric else SqlType.FLOAT
        return SqlType.ANY

    def _binary_type(self, node: ast.BinaryOp) -> SqlType:
        op = node.op
        span = span_of(node)
        if op in ("AND", "OR"):
            for side in (node.left, node.right):
                side_type = self.infer(side)
                if side_type.known and side_type is not SqlType.BOOLEAN:
                    self._sink.warning(
                        "TQL106",
                        f"{op} operand has type {side_type.value}; the engine "
                        "applies SQL truthiness (non-zero / non-empty is true)",
                        span_of(side) or span,
                    )
            return SqlType.BOOLEAN

        if op in ("CONTAINS", "MATCHES", "LIKE"):
            left = self.infer(node.left)
            right = self.infer(node.right)
            for side_type, side in ((left, node.left), (right, node.right)):
                if side_type.known and side_type is not SqlType.STRING:
                    self._sink.warning(
                        "TQL105",
                        f"{op} operand has type {side_type.value}; it will be "
                        "coerced to a string",
                        span_of(side) or span,
                    )
            return SqlType.BOOLEAN

        if op == "IN_BBOX":
            left = self.infer(node.left)
            if left.known and left is not SqlType.POINT:
                self._sink.warning(
                    "TQL107",
                    f"IN [bounding box …] tests a (lat, lon) point, got "
                    f"{left.value}; the predicate will always be NULL",
                    span_of(node.left) or span,
                )
            return SqlType.BOOLEAN

        if op in ("=", "!=", "<>", "<", "<=", ">", ">="):
            left, right = self.infer(node.left), self.infer(node.right)
            if left.known and right.known and not _comparable(left, right):
                self._sink.warning(
                    "TQL102",
                    f"comparison between {left.value} and {right.value} is "
                    "always NULL (the row never matches)",
                    span,
                )
            return SqlType.BOOLEAN

        if op in ("+", "-", "*", "/", "%"):
            left, right = self.infer(node.left), self.infer(node.right)
            if op == "+" and left is SqlType.STRING and right is SqlType.STRING:
                return SqlType.STRING  # Python concat; works, if unusual
            for side_type, side in ((left, node.left), (right, node.right)):
                if side_type.known and not side_type.numeric:
                    self._sink.error(
                        "TQL101",
                        f"arithmetic {op} on a {side_type.value} value raises "
                        "at runtime and kills the stream query",
                        span_of(side) or span,
                    )
            if left is SqlType.FLOAT or right is SqlType.FLOAT or op == "/":
                return SqlType.FLOAT
            if left is SqlType.INTEGER and right is SqlType.INTEGER:
                return SqlType.INTEGER
            return SqlType.FLOAT
        return SqlType.ANY

    def _in_list_type(self, node: ast.InList) -> SqlType:
        needle = self.infer(node.operand)
        for value in node.values:
            value_type = self.infer(value)
            if needle.known and value_type.known and not _comparable(needle, value_type):
                self._sink.warning(
                    "TQL102",
                    f"IN list mixes {needle.value} with {value_type.value}; "
                    "this member can never match",
                    span_of(value),
                )
        return SqlType.BOOLEAN


def _comparable(left: SqlType, right: SqlType) -> bool:
    if left is right:
        return True
    return left.numeric and right.numeric


def _declared_return_for_aggregate(name: str, arg_type: SqlType) -> SqlType:
    result = _AGGREGATE_RESULT.get(name, SqlType.ANY)
    return arg_type if result is None else result
