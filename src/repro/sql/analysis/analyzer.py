"""Analysis entry points and the planner's validation gate.

:func:`analyze_sql` / :func:`analyze_statement` run the full pipeline —
parse (syntax problems become ``TQL001``/``TQL002`` diagnostics), type
inference, semantic validation, lints — and return an
:class:`AnalysisResult` holding every finding.

The planner calls :meth:`AnalysisResult.raise_first_error` before
building a pipeline, so every plan-time rejection carries a stable code
and source span while still raising the same exception types
(``UnknownSourceError``, ``UnknownFieldError``, ``UnknownFunctionError``,
``PlanError``) callers already catch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.engine.functions import FunctionRegistry, default_registry
from repro.errors import (
    LexError,
    ParseError,
    PlanError,
    UnknownFieldError,
    UnknownFunctionError,
    UnknownSourceError,
)
from repro.sql import ast
from repro.sql.analysis.catalog import Catalog, SourceInfo
from repro.sql.analysis.diagnostics import Diagnostic, DiagnosticSink, Severity
from repro.sql.analysis.lints import run_lints
from repro.sql.analysis.semantic import check_statement, resolve_statement_schema
from repro.sql.ast import Span
from repro.sql.parser import parse


@dataclass(frozen=True)
class AnalysisResult:
    """Everything one analysis pass found.

    Attributes:
        source_sql: the analyzed query text, when known (enables caret
            snippets in :meth:`render`).
        statement: the parsed statement, or None when parsing failed.
        diagnostics: every finding, errors first, then by position.
    """

    source_sql: str | None
    statement: ast.SelectStatement | None
    diagnostics: tuple[Diagnostic, ...]

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(
            d for d in self.diagnostics if d.severity is Severity.ERROR
        )

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(
            d for d in self.diagnostics if d.severity is Severity.WARNING
        )

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        return tuple(
            d for d in self.diagnostics if d.severity is Severity.INFO
        )

    def ok(self, strict: bool = False) -> bool:
        """No errors — and, under ``strict``, no warnings either."""
        if self.errors:
            return False
        return not (strict and self.warnings)

    def render(self) -> str:
        """All diagnostics with caret snippets, one blank line apart."""
        if not self.diagnostics:
            return "no issues found"
        return "\n\n".join(
            d.render(self.source_sql) for d in self.diagnostics
        )

    def as_dict(self) -> dict[str, object]:
        """JSON-ready representation (``tweeql check --format=json``)."""
        return {
            "ok": self.ok(),
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }

    # -- the planner gate ----------------------------------------------------

    def raise_first_error(self) -> None:
        """Raise the error the planner would have raised, typed and coded.

        Raises in the planner's own validation order (source resolution,
        then join shape, then expression compilation, then aggregate
        rules) so existing callers see the same exception type they
        always did — now carrying ``code``/``diagnostic``. Syntax
        diagnostics (``TQL001``/``TQL002``) re-raise as
        :class:`LexError`/:class:`ParseError`.
        """
        errors = self.errors
        if not errors:
            return
        diag = min(errors, key=_planner_order)
        payload = dict(diag.payload or {})
        exc: Exception
        if diag.code == "TQL001":
            exc = LexError(
                diag.message,
                position=diag.span.start if diag.span else None,
            )
        elif diag.code == "TQL002":
            exc = ParseError(
                diag.message,
                position=diag.span.start if diag.span else None,
                end=diag.span.end if diag.span else None,
            )
        elif diag.code == "TQL212":
            exc = UnknownSourceError(
                str(payload.get("name", "")),
                tuple(payload.get("available", ())),  # type: ignore[arg-type]
            )
        elif diag.code == "TQL201":
            exc = UnknownFieldError(
                str(payload.get("name", "")),
                tuple(payload.get("available", ())),  # type: ignore[arg-type]
            )
        elif diag.code == "TQL202":
            hint = payload.get("hint")
            exc = UnknownFunctionError(
                str(payload.get("name", "")),
                str(hint) if hint is not None else None,
            )
        else:
            exc = PlanError(diag.message, code=diag.code)
        exc.diagnostic = diag
        raise exc


#: Codes the gate enforces, in the order the planner hits them: source
#: resolution, join shape, expression compilation (unknown names,
#: misplaced aggregates, pattern/box literals), then statement shape.
#: TQL1xx type findings are advisory and never gate planning, with the
#: one exception the engine itself enforces at runtime boundaries.
_PLANNER_ORDER: dict[str, int] = {
    code: index
    for index, code in enumerate(
        (
            "TQL001", "TQL002",
            "TQL212",
            "TQL215", "TQL216", "TQL214",
            "TQL202", "TQL201", "TQL203",
            "TQL209", "TQL210", "TQL208",
            "TQL206", "TQL211",
            "TQL204", "TQL205",
            "TQL207", "TQL213",
        )
    )
}


def _planner_order(diag: Diagnostic) -> tuple[int, int]:
    order = _PLANNER_ORDER.get(diag.code)
    if order is None:
        # Non-gating codes sort last; gate_result() filters them out
        # before the planner calls raise_first_error().
        order = len(_PLANNER_ORDER)
    position = diag.span.start if diag.span is not None else 1 << 30
    return (order, position)


#: Error codes the planner enforces. TQL1xx findings never block: the
#: engine tolerates type oddities at runtime (NULL propagation), so
#: rejecting them would refuse queries that execute fine today.
_GATING_CODES = frozenset(_PLANNER_ORDER)


def gate_result(result: AnalysisResult) -> AnalysisResult:
    """The result restricted to diagnostics the planner enforces."""
    return AnalysisResult(
        source_sql=result.source_sql,
        statement=result.statement,
        diagnostics=tuple(
            d
            for d in result.diagnostics
            if d.severity is Severity.ERROR and d.code in _GATING_CODES
        ),
    )


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


def analyze_statement(
    statement: ast.SelectStatement,
    *,
    catalog: Catalog | None = None,
    registry: FunctionRegistry | None = None,
    config: Any = None,
    source_sql: str | None = None,
) -> AnalysisResult:
    """Analyze a parsed statement against a catalog and registry.

    Args:
        statement: the parsed query.
        catalog: addressable sources; defaults to the live tweet stream
            only (:meth:`Catalog.default`).
        registry: UDF registry; defaults to the builtin set.
        config: the session's ``EngineConfig`` (enables the
            configuration-dependent checks and lints); None for
            session-less analysis.
        source_sql: original query text for caret snippets.
    """
    catalog = catalog or Catalog.default()
    registry = registry or default_registry()
    sink = DiagnosticSink()
    schema = resolve_statement_schema(statement, catalog, sink)
    check_statement(
        statement,
        schema,
        registry,
        sink,
        has_confidence_policy=(
            getattr(config, "confidence_policy", None) is not None
        ),
    )
    run_lints(statement, schema, registry, sink, catalog, config)
    return AnalysisResult(
        source_sql=source_sql,
        statement=statement,
        diagnostics=sink.collect(),
    )


def analyze_sql(
    sql: str,
    *,
    catalog: Catalog | None = None,
    registry: FunctionRegistry | None = None,
    config: Any = None,
) -> AnalysisResult:
    """Analyze a query string; syntax problems become diagnostics too."""
    try:
        statement = parse(sql)
    except LexError as exc:
        span = (
            Span(exc.position, exc.position + 1)
            if exc.position is not None
            else None
        )
        return AnalysisResult(
            source_sql=sql,
            statement=None,
            diagnostics=(
                Diagnostic("TQL001", Severity.ERROR, str(exc), span),
            ),
        )
    except ParseError as exc:
        span = (
            Span(exc.position, exc.end or exc.position + 1)
            if exc.position is not None
            else None
        )
        return AnalysisResult(
            source_sql=sql,
            statement=None,
            diagnostics=(
                Diagnostic("TQL002", Severity.ERROR, str(exc), span),
            ),
        )
    return analyze_statement(
        statement,
        catalog=catalog,
        registry=registry,
        config=config,
        source_sql=sql,
    )


def catalog_from_sources(sources: dict[str, Any]) -> Catalog:
    """Build a catalog from a session's ``SourceBinding`` map."""
    return Catalog(
        sources=tuple(
            SourceInfo(
                name=name,
                schema=tuple(binding.schema),
                live=getattr(binding, "api", None) is not None,
            )
            for name, binding in sorted(sources.items())
        )
    )
