"""The analyzer's view of what a session can address.

A :class:`Catalog` is a read-only snapshot of the FROM-able sources — just
names and schemas, plus whether a source is backed by the live streaming
API (the firehose lint only applies to live sources). Sessions build one
from their bindings (``TweeQL.analyze``); standalone analysis
(``tweeql check`` without a session) uses :meth:`Catalog.default`, which
knows only the ``twitter`` stream.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.twitter.models import TWITTER_SCHEMA


@dataclass(frozen=True)
class SourceInfo:
    """One FROM-able source as the analyzer sees it."""

    name: str
    schema: tuple[str, ...]
    live: bool = False  # backed by the streaming API (not a static table)


@dataclass(frozen=True)
class Catalog:
    """Named sources available to the statement under analysis."""

    sources: tuple[SourceInfo, ...]

    def get(self, name: str) -> SourceInfo | None:
        key = name.lower()
        for source in self.sources:
            if source.name == key:
                return source
        return None

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(source.name for source in self.sources))

    @classmethod
    def default(cls) -> "Catalog":
        """Catalog for session-less analysis: the live tweet stream only."""
        return cls(
            sources=(
                SourceInfo(name="twitter", schema=TWITTER_SCHEMA, live=True),
            )
        )
