"""Statement-level semantic validation (``TQL2xx``).

Mirrors, check for check, everything the planner rejects — unknown
sources, aggregate/window/HAVING/ORDER BY shape rules, join shape and
field resolution, bounding boxes, LIKE/MATCHES pattern rules, and the
confidence-policy restrictions — but *collects* every violation instead
of raising on the first. The planner routes its own validation through
:func:`repro.sql.analysis.analyzer.analyze_statement`, so a query that
produces no ``TQL2xx`` error here is exactly a query the planner accepts
(the no-drift property tested in ``tests/sql/analysis/test_no_drift.py``).

Clause-by-clause alias and aggregate scoping copies the engine:

- WHERE resolves against the (join-merged) stream schema only, never
  aliases, and admits no aggregates;
- in an aggregate query, GROUP BY / HAVING / ORDER BY / SELECT items may
  reference non-aggregate select aliases;
- HAVING and ORDER BY admit aggregates only in aggregate queries;
  GROUP BY never does.
"""

from __future__ import annotations

import re

from repro.engine.aggregates import AGGREGATE_NAMES
from repro.engine.functions import FunctionRegistry
from repro.geo.bbox import BoundingBox, named_box
from repro.sql import ast
from repro.sql.analysis.catalog import Catalog
from repro.sql.analysis.diagnostics import DiagnosticSink
from repro.sql.analysis.typeinfer import (
    SqlType,
    TypeInferencer,
    field_types_for,
    suggest,
)
from repro.sql.ast import span_of


def statement_has_aggregates(statement: ast.SelectStatement) -> bool:
    """The planner's aggregate-mode test, verbatim."""
    from repro.engine.expressions import contains_aggregate

    return bool(statement.group_by) or any(
        not isinstance(item.expr, ast.Star) and contains_aggregate(item.expr)
        for item in statement.select
    )


def _aggregate_sites(statement: ast.SelectStatement) -> list[ast.FuncCall]:
    """Distinct outermost aggregate calls across SELECT/HAVING/ORDER BY,
    keyed by rendered SQL exactly like the planner's rewrite."""
    sites: list[ast.FuncCall] = []
    seen: set[str] = set()

    def visit(expr: ast.Expr) -> None:
        if isinstance(expr, ast.FuncCall) and expr.name in AGGREGATE_NAMES:
            key = expr.to_sql()
            if key not in seen:
                seen.add(key)
                sites.append(expr)
            return  # outermost only; nested aggregates are a TQL203
        if isinstance(expr, ast.FuncCall):
            for arg in expr.args:
                visit(arg)
        elif isinstance(expr, ast.BinaryOp):
            visit(expr.left)
            visit(expr.right)
        elif isinstance(expr, ast.UnaryOp):
            visit(expr.operand)
        elif isinstance(expr, ast.InList):
            visit(expr.operand)
            for value in expr.values:
                visit(value)

    for item in statement.select:
        if not isinstance(item.expr, ast.Star):
            visit(item.expr)
    if statement.having is not None:
        visit(statement.having)
    for expr, _desc in statement.order_by:
        visit(expr)
    return sites


def resolve_statement_schema(
    statement: ast.SelectStatement,
    catalog: Catalog,
    sink: DiagnosticSink,
) -> tuple[str, ...]:
    """The schema downstream clauses resolve against, reporting ``TQL212``
    for unknown sources and applying the join's schema merge.

    Unknown sources fall back to the default tweet schema so the rest of
    the statement still gets analyzed in one pass.
    """
    binding = catalog.get(statement.source)
    if binding is None:
        available = catalog.names()
        sink.error(
            "TQL212",
            f"unknown stream source: {statement.source!r} "
            f"(available: {', '.join(available)})",
            None,
            suggest(statement.source, available),
            payload={"name": statement.source, "available": available},
        )
        schema: tuple[str, ...] = Catalog.default().sources[0].schema
    else:
        schema = binding.schema
    schema = tuple(name.lower() for name in schema)

    join = statement.join
    if join is None:
        return schema
    right = catalog.get(join.source)
    if right is None:
        available = catalog.names()
        sink.error(
            "TQL212",
            f"unknown stream source: {join.source!r} "
            f"(available: {', '.join(available)})",
            None,
            suggest(join.source, available),
            payload={"name": join.source, "available": available},
        )
        return schema
    right_schema = tuple(name.lower() for name in right.schema)
    _check_join(statement, schema, right_schema, sink)
    left_names = set(schema)
    return schema + tuple(
        f"r_{name}" if name in left_names else name
        for name in right_schema
        if name != "created_at"
    )


def _check_join(
    statement: ast.SelectStatement,
    left_schema: tuple[str, ...],
    right_schema: tuple[str, ...],
    sink: DiagnosticSink,
) -> None:
    join = statement.join
    assert join is not None
    is_lookup = "created_at" not in set(right_schema)
    if not is_lookup and (
        statement.window is None or statement.window.count_based
    ):
        sink.error(
            "TQL214",
            "stream-stream JOIN requires a *time* WINDOW clause (streams "
            "join within a time band)",
            span_of(statement.window) if statement.window else None,
            "add e.g. WINDOW 60 SECONDS, or drop created_at from the right "
            "source to make it a lookup table",
        )
    condition = join.condition
    if not (
        isinstance(condition, ast.BinaryOp)
        and condition.op == "="
        and isinstance(condition.left, ast.FieldRef)
        and isinstance(condition.right, ast.FieldRef)
    ):
        sink.error(
            "TQL215",
            "JOIN ON must be an equality between two field references",
            span_of(condition),
        )
        return
    left_names = set(left_schema)
    right_names = set(right_schema)
    names = (condition.left.name.lower(), condition.right.name.lower())
    if not (
        (names[0] in left_names and names[1] in right_names)
        or (names[1] in left_names and names[0] in right_names)
    ):
        sink.error(
            "TQL216",
            f"cannot resolve join fields {names[0]!r}, {names[1]!r} "
            "against the two sources",
            span_of(condition),
        )


def check_statement(
    statement: ast.SelectStatement,
    schema: tuple[str, ...],
    registry: FunctionRegistry,
    sink: DiagnosticSink,
    has_confidence_policy: bool = False,
) -> None:
    """Run every ``TQL2xx`` / ``TQL1xx`` check over one statement.

    ``schema`` is the effective (join-merged) stream schema from
    :func:`resolve_statement_schema`.
    """
    field_types = field_types_for(schema)
    has_aggregates = statement_has_aggregates(statement)

    def inferencer(
        aliases: dict[str, SqlType] | None = None,
        allow_aggregates: bool = False,
    ) -> TypeInferencer:
        return TypeInferencer(
            registry, field_types, sink,
            aliases=aliases, allow_aggregates=allow_aggregates,
        )

    # ---- select list --------------------------------------------------------
    alias_types: dict[str, SqlType] = {}
    if has_aggregates:
        from repro.engine.expressions import contains_aggregate

        # First pass builds alias types exactly like the planner builds
        # alias_evals: only non-aggregate aliased items participate.
        for item in statement.select:
            if isinstance(item.expr, ast.Star):
                continue
            if item.alias and not contains_aggregate(item.expr):
                quiet = DiagnosticSink()  # typed on the plain schema;
                alias_types[item.alias] = TypeInferencer(
                    registry, field_types, quiet
                ).infer(item.expr)
        for item in statement.select:
            if isinstance(item.expr, ast.Star):
                sink.error(
                    "TQL206",
                    "SELECT * cannot be combined with aggregates",
                    span_of(item.expr) or span_of(item),
                    "name the grouped columns explicitly",
                )
                continue
            inferencer(alias_types, allow_aggregates=True).infer(item.expr)
    else:
        for item in statement.select:
            if isinstance(item.expr, ast.Star):
                continue
            inferencer().infer(item.expr)

    # ---- WHERE: schema only, no aliases, no aggregates ----------------------
    if statement.where is not None:
        predicate_type = inferencer().infer(statement.where)
        _check_predicate_type(statement.where, predicate_type, sink, "WHERE")

    # ---- GROUP BY: aliases yes, aggregates no -------------------------------
    for expr in statement.group_by:
        inferencer(alias_types).infer(expr)

    # ---- HAVING / ORDER BY --------------------------------------------------
    if statement.having is not None:
        if not has_aggregates:
            sink.error(
                "TQL204",
                "HAVING requires aggregation",
                span_of(statement.having),
                "add an aggregate to the SELECT list or use WHERE",
            )
        having_type = inferencer(alias_types, allow_aggregates=True).infer(
            statement.having
        )
        if has_aggregates:
            _check_predicate_type(statement.having, having_type, sink, "HAVING")

    if statement.order_by and not has_aggregates:
        sink.error(
            "TQL205",
            "ORDER BY requires a windowed aggregate query (streams have no "
            "global order to sort)",
            span_of(statement.order_by[0][0]),
            "aggregate over a WINDOW, then ORDER BY within each window",
        )
    for expr, _desc in statement.order_by:
        inferencer(alias_types, allow_aggregates=True).infer(expr)

    # ---- aggregate mode rules ----------------------------------------------
    if has_aggregates:
        sites = _aggregate_sites(statement)
        if statement.window is None:
            if not has_confidence_policy:
                sink.error(
                    "TQL207",
                    "aggregate queries need a WINDOW clause (or a session "
                    "confidence policy for AVG; see "
                    "EngineConfig.confidence_policy)",
                    span_of(sites[0]) if sites else None,
                    "add e.g. WINDOW 60 SECONDS EVERY 10 SECONDS",
                )
            else:
                if len(sites) != 1 or sites[0].name != "avg":
                    sink.error(
                        "TQL213",
                        "confidence-triggered emission supports exactly one "
                        "AVG aggregate; add a WINDOW clause for other "
                        "aggregate mixes",
                        span_of(sites[0]) if sites else None,
                    )
                if statement.order_by or statement.limit is not None:
                    sink.error(
                        "TQL213",
                        "ORDER BY / LIMIT are not supported with "
                        "confidence-triggered emission",
                        span_of(statement.order_by[0][0])
                        if statement.order_by
                        else None,
                    )

    # ---- string-operator literal rules --------------------------------------
    for clause in _all_exprs(statement):
        for node in ast.walk(clause):
            _check_patterns(node, sink)


def _check_predicate_type(
    expr: ast.Expr, inferred: SqlType, sink: DiagnosticSink, clause: str
) -> None:
    if inferred.known and inferred is not SqlType.BOOLEAN:
        sink.warning(
            "TQL106",
            f"{clause} predicate has type {inferred.value}; the engine "
            "applies SQL truthiness (non-zero / non-empty is true)",
            span_of(expr),
        )


def _all_exprs(statement: ast.SelectStatement) -> list[ast.Expr]:
    exprs: list[ast.Expr] = [
        item.expr
        for item in statement.select
        if not isinstance(item.expr, ast.Star)
    ]
    if statement.where is not None:
        exprs.append(statement.where)
    exprs.extend(statement.group_by)
    if statement.having is not None:
        exprs.append(statement.having)
    exprs.extend(expr for expr, _desc in statement.order_by)
    if statement.join is not None:
        exprs.append(statement.join.condition)
    return exprs


def _check_patterns(node: ast.Expr, sink: DiagnosticSink) -> None:
    """LIKE literal rule, MATCHES regex validity, bounding-box validity."""
    if isinstance(node, ast.BBox):
        _check_bbox(node, sink)
        return
    if not isinstance(node, ast.BinaryOp):
        return
    if node.op == "LIKE":
        if not (
            isinstance(node.right, ast.Literal)
            and isinstance(node.right.value, str)
        ):
            sink.error(
                "TQL209",
                "LIKE requires a string literal pattern",
                span_of(node.right) or span_of(node),
                "use MATCHES for dynamic patterns",
            )
    elif node.op == "MATCHES":
        if isinstance(node.right, ast.Literal) and isinstance(
            node.right.value, str
        ):
            try:
                re.compile(node.right.value, re.IGNORECASE)
            except re.error as exc:
                sink.error(
                    "TQL210",
                    f"invalid regular expression {node.right.value!r}: {exc}",
                    span_of(node.right) or span_of(node),
                )


def _check_bbox(node: ast.BBox, sink: DiagnosticSink) -> None:
    if node.coords is not None:
        south, west, north, east = node.coords
        try:
            BoundingBox(south, west, north, east)
        except ValueError as exc:
            sink.error("TQL208", f"invalid bounding box: {exc}", span_of(node))
        return
    assert node.name is not None
    try:
        named_box(node.name)
    except KeyError as exc:
        sink.error("TQL208", str(exc.args[0]), span_of(node))
