"""Tokenizer for the TweeQL dialect.

Hand-rolled single-pass lexer. Keywords are case-insensitive; identifiers
preserve case but compare case-insensitively downstream. String literals use
single quotes with ``''`` as the escape (standard SQL), and the dialect adds
square brackets for the geographic literal syntax the paper shows
(``[bounding box for NYC]``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import LexError


class TokenType(enum.Enum):
    """Lexical token categories."""

    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OP = "op"  # punctuation and operators
    EOF = "eof"


#: Reserved words (stored uppercase).
KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "AS", "AND", "OR", "NOT",
        "IN", "IS", "NULL", "TRUE", "FALSE", "WINDOW", "EVERY", "HAVING",
        "LIMIT", "INTO", "CONTAINS", "MATCHES", "LIKE", "BOUNDING", "BOX",
        "FOR", "SECOND", "SECONDS", "MINUTE", "MINUTES", "HOUR", "HOURS",
        "DAY", "DAYS", "TWEET", "TWEETS", "JOIN", "ON", "ASC", "DESC",
        "ORDER", "BETWEEN", "DISTINCT",
    }
)

#: Multi-character operators, longest first so '<=' wins over '<'.
_MULTI_OPS = ("<=", ">=", "<>", "!=", "==")
_SINGLE_OPS = set("+-*/%(),.;<>=[]")


@dataclass(frozen=True)
class Token:
    """One lexical token.

    Attributes:
        type: token category.
        value: normalized text — keywords uppercased, numbers as written,
            strings with quotes/escapes removed.
        position: character offset of the token's first character.
        end: character offset one past the token's last *source* character
            (differs from ``position + len(value)`` for string literals,
            whose quotes and escapes are stripped from ``value``).
    """

    type: TokenType
    value: str
    position: int
    end: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        if self.end < 0:
            object.__setattr__(self, "end", self.position + len(self.value))

    @property
    def span(self) -> tuple[int, int]:
        """(start, end) source offsets for diagnostics."""
        return (self.position, self.end)

    def is_keyword(self, *names: str) -> bool:
        """True when this token is one of the given keywords."""
        return self.type is TokenType.KEYWORD and self.value in names

    def is_op(self, *ops: str) -> bool:
        """True when this token is one of the given operator strings."""
        return self.type is TokenType.OP and self.value in ops


def tokenize(query: str) -> list[Token]:
    """Tokenize a TweeQL query string.

    Returns the token list terminated by an EOF token.

    Raises:
        LexError: on an unterminated string or unexpected character.
    """
    tokens: list[Token] = []
    i = 0
    n = len(query)
    while i < n:
        ch = query[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and query[i : i + 2] == "--":  # line comment
            newline = query.find("\n", i)
            i = n if newline < 0 else newline + 1
            continue
        if ch == "'":
            start = i
            value, i = _read_string(query, i)
            tokens.append(Token(TokenType.STRING, value, start, i))
            continue
        if ch.isdigit() or (
            ch == "." and i + 1 < n and query[i + 1].isdigit()
        ):
            start = i
            i += 1
            seen_dot = ch == "."
            while i < n and (query[i].isdigit() or (query[i] == "." and not seen_dot)):
                seen_dot = seen_dot or query[i] == "."
                i += 1
            tokens.append(Token(TokenType.NUMBER, query[start:i], start))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (query[i].isalnum() or query[i] == "_"):
                i += 1
            word = query[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, start))
            else:
                tokens.append(Token(TokenType.IDENT, word, start))
            continue
        two = query[i : i + 2]
        if two in _MULTI_OPS:
            tokens.append(Token(TokenType.OP, two, i))
            i += 2
            continue
        if ch in _SINGLE_OPS:
            tokens.append(Token(TokenType.OP, ch, i))
            i += 1
            continue
        raise LexError(f"unexpected character {ch!r} at position {i}", position=i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens


def _read_string(query: str, start: int) -> tuple[str, int]:
    """Read a single-quoted string starting at ``start``; '' escapes a quote."""
    i = start + 1
    parts: list[str] = []
    n = len(query)
    while i < n:
        ch = query[i]
        if ch == "'":
            if query[i : i + 2] == "''":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise LexError("unterminated string literal", position=start)
