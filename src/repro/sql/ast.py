"""Abstract syntax tree for TweeQL queries.

Plain frozen dataclasses; the planner walks these to build physical
operators. Every node renders back to query text via ``to_sql()`` so error
messages and the REPL's ``EXPLAIN`` stay readable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Union

Expr = Union[
    "Literal", "FieldRef", "FuncCall", "BinaryOp", "UnaryOp", "InList",
    "BBox", "Star",
]


@dataclass(frozen=True)
class Span:
    """A half-open character range ``[start, end)`` in the query source.

    The parser stamps one on every expression node so diagnostics can
    point back at the offending text with a caret snippet. Spans never
    participate in node equality — two ASTs are equal when their shapes
    are, wherever they were parsed from.
    """

    start: int
    end: int

    def union(self, other: "Span | None") -> "Span":
        if other is None:
            return self
        return Span(min(self.start, other.start), max(self.end, other.end))


#: Span field shared by every AST node: parser-stamped, equality-neutral.
def _span_field() -> Any:
    return field(default=None, compare=False, repr=False, kw_only=True)


def span_of(expr: Expr) -> Span | None:
    """The node's span, or the union of its children's spans as a fallback."""
    direct = getattr(expr, "span", None)
    if direct is not None:
        return direct
    merged: Span | None = None
    for child in walk(expr):
        child_span = getattr(child, "span", None)
        if child_span is not None:
            merged = child_span if merged is None else child_span.union(merged)
    return merged


@dataclass(frozen=True)
class Literal:
    """A constant: number, string, boolean, or NULL."""

    value: Any
    span: Span | None = _span_field()

    def to_sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return repr(self.value)


@dataclass(frozen=True)
class FieldRef:
    """A reference to a stream field or a select alias."""

    name: str
    span: Span | None = _span_field()

    def to_sql(self) -> str:
        return self.name


@dataclass(frozen=True)
class Star:
    """``SELECT *``."""

    span: Span | None = _span_field()

    def to_sql(self) -> str:
        return "*"


@dataclass(frozen=True)
class FuncCall:
    """A scalar, UDF, or aggregate call. Aggregates are resolved by the
    planner against the function registry, not at parse time."""

    name: str
    args: tuple[Expr, ...] = ()
    distinct: bool = False
    span: Span | None = _span_field()

    def to_sql(self) -> str:
        inner = ", ".join(a.to_sql() for a in self.args)
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class BinaryOp:
    """A binary operation; ``op`` is the normalized operator text.

    Operators: arithmetic ``+ - * / %``, comparisons ``= != < <= > >=``,
    boolean ``AND OR``, and the tweet-text operators ``CONTAINS`` /
    ``MATCHES`` / ``LIKE``.
    """

    op: str
    left: Expr
    right: Expr
    span: Span | None = _span_field()

    def to_sql(self) -> str:
        op = "IN" if self.op == "IN_BBOX" else self.op
        return f"({self.left.to_sql()} {op} {self.right.to_sql()})"


@dataclass(frozen=True)
class UnaryOp:
    """``NOT expr``, ``-expr``, ``expr IS NULL`` / ``expr IS NOT NULL``."""

    op: str  # "NOT", "NEG", "IS NULL", "IS NOT NULL"
    operand: Expr
    span: Span | None = _span_field()

    def to_sql(self) -> str:
        if self.op == "NEG":
            return f"(-{self.operand.to_sql()})"
        if self.op.startswith("IS"):
            return f"({self.operand.to_sql()} {self.op})"
        return f"({self.op} {self.operand.to_sql()})"


@dataclass(frozen=True)
class InList:
    """``expr IN (v1, v2, …)`` over literal values."""

    operand: Expr
    values: tuple[Expr, ...]
    span: Span | None = _span_field()

    def to_sql(self) -> str:
        inner = ", ".join(v.to_sql() for v in self.values)
        return f"({self.operand.to_sql()} IN ({inner}))"


@dataclass(frozen=True)
class BBox:
    """A geographic literal.

    Two surface forms parse to this node:

    - ``[bounding box for NYC]`` — a named box (the paper's syntax),
    - ``[bbox south, west, north, east]`` — explicit coordinates.

    Used as the right operand of ``location IN …``.
    """

    name: str | None = None
    coords: tuple[float, float, float, float] | None = None
    span: Span | None = _span_field()

    def to_sql(self) -> str:
        if self.name is not None:
            return f"[bounding box for {self.name}]"
        assert self.coords is not None
        return "[bbox " + ", ".join(f"{c:g}" for c in self.coords) + "]"


@dataclass(frozen=True)
class SelectItem:
    """One projection: an expression and its optional alias."""

    expr: Expr
    alias: str | None = None
    span: Span | None = _span_field()

    @property
    def output_name(self) -> str:
        """Column name in the result schema (alias or rendered expression)."""
        if self.alias:
            return self.alias
        if isinstance(self.expr, FieldRef):
            return self.expr.name
        return self.expr.to_sql()

    def to_sql(self) -> str:
        rendered = self.expr.to_sql()
        return f"{rendered} AS {self.alias}" if self.alias else rendered


@dataclass(frozen=True)
class WindowSpec:
    """``WINDOW n unit [EVERY m unit]``.

    Time windows (``seconds``/``minutes``/``hours``/``days``) set
    ``size_seconds``; count windows (``tweets``) set ``size_count`` — the
    §2 alternative whose inadequacy on uneven groups motivates
    confidence-triggered emission. The slide defaults to the size (a
    tumbling window) when EVERY is omitted. Mixing a time size with a
    count slide (or vice versa) is rejected by the parser.
    """

    size_seconds: float | None = None
    slide_seconds: float | None = None
    size_count: int | None = None
    slide_count: int | None = None
    span: Span | None = _span_field()

    def __post_init__(self) -> None:
        if (self.size_seconds is None) == (self.size_count is None):
            raise ValueError(
                "exactly one of size_seconds / size_count must be set"
            )

    @property
    def count_based(self) -> bool:
        return self.size_count is not None

    @property
    def slide(self) -> float:
        if self.count_based:
            return float(
                self.slide_count if self.slide_count is not None else self.size_count
            )
        return (
            self.slide_seconds
            if self.slide_seconds is not None
            else self.size_seconds
        )

    @property
    def tumbling(self) -> bool:
        size = self.size_count if self.count_based else self.size_seconds
        return self.slide >= size

    def to_sql(self) -> str:
        if self.count_based:
            text = f"WINDOW {self.size_count} TWEETS"
            if self.slide_count is not None:
                text += f" EVERY {self.slide_count} TWEETS"
            return text
        text = f"WINDOW {self.size_seconds:g} SECONDS"
        if self.slide_seconds is not None:
            text += f" EVERY {self.slide_seconds:g} SECONDS"
        return text


@dataclass(frozen=True)
class JoinClause:
    """``JOIN source ON condition`` (windowed stream join)."""

    source: str
    condition: Expr
    alias: str | None = None


@dataclass(frozen=True)
class SelectStatement:
    """A full TweeQL query."""

    select: tuple[SelectItem, ...]
    source: str
    source_alias: str | None = None
    join: JoinClause | None = None
    where: Expr | None = None
    group_by: tuple[Expr, ...] = ()
    window: WindowSpec | None = None
    having: Expr | None = None
    limit: int | None = None
    into: str | None = None
    into_stream: str | None = None
    order_by: tuple[tuple[Expr, bool], ...] = ()  # (expr, descending)

    def to_sql(self) -> str:
        parts = ["SELECT " + ", ".join(item.to_sql() for item in self.select)]
        parts.append(f"FROM {self.source}")
        if self.join is not None:
            parts.append(
                f"JOIN {self.join.source} ON {self.join.condition.to_sql()}"
            )
        if self.where is not None:
            parts.append(f"WHERE {self.where.to_sql()}")
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(g.to_sql() for g in self.group_by))
        if self.window is not None:
            parts.append(self.window.to_sql())
        if self.having is not None:
            parts.append(f"HAVING {self.having.to_sql()}")
        if self.order_by:
            rendered = ", ".join(
                f"{expr.to_sql()} {'DESC' if desc else 'ASC'}"
                for expr, desc in self.order_by
            )
            parts.append(f"ORDER BY {rendered}")
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        if self.into is not None:
            parts.append(f"INTO {self.into}")
        if self.into_stream is not None:
            parts.append(f"INTO STREAM {self.into_stream}")
        return " ".join(parts) + ";"


def walk(expr: Expr):
    """Yield ``expr`` and every sub-expression, depth-first."""
    yield expr
    if isinstance(expr, FuncCall):
        for arg in expr.args:
            yield from walk(arg)
    elif isinstance(expr, BinaryOp):
        yield from walk(expr.left)
        yield from walk(expr.right)
    elif isinstance(expr, UnaryOp):
        yield from walk(expr.operand)
    elif isinstance(expr, InList):
        yield from walk(expr.operand)
        for value in expr.values:
            yield from walk(value)


def field_names(expr: Expr) -> set[str]:
    """All field names referenced anywhere in ``expr``."""
    return {node.name for node in walk(expr) if isinstance(node, FieldRef)}
