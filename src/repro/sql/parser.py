"""Recursive-descent parser for the TweeQL dialect.

Grammar (roughly; ``[]`` optional, ``{}`` repetition)::

    statement   := SELECT select_list FROM source [JOIN source ON expr]
                   [WHERE expr] [GROUP BY expr {, expr}] [window]
                   [HAVING expr] [ORDER BY expr [ASC|DESC] {, …}]
                   [LIMIT int] [INTO ident] [;]
    select_list := * | item {, item}
    item        := expr [[AS] ident]
    window      := WINDOW number unit [EVERY number unit]
    unit        := SECOND[S] | MINUTE[S] | HOUR[S] | DAY[S]

Expressions use conventional precedence (OR < AND < NOT < comparison <
additive < multiplicative < unary), with the tweet-specific ``CONTAINS``,
``MATCHES``, and ``LIKE`` at comparison precedence, ``IS [NOT] NULL``,
``[NOT] IN (…)``, ``BETWEEN a AND b`` (desugared), and the geographic
literal ``[bounding box for NYC]`` / ``[bbox s, w, n, e]``.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.sql.ast import (
    BBox,
    BinaryOp,
    Expr,
    FieldRef,
    FuncCall,
    InList,
    JoinClause,
    Literal,
    SelectItem,
    SelectStatement,
    Span,
    Star,
    UnaryOp,
    WindowSpec,
    span_of,
)
from repro.sql.lexer import Token, TokenType, tokenize

_UNIT_SECONDS = {
    "SECOND": 1.0,
    "SECONDS": 1.0,
    "MINUTE": 60.0,
    "MINUTES": 60.0,
    "HOUR": 3600.0,
    "HOURS": 3600.0,
    "DAY": 86400.0,
    "DAYS": 86400.0,
}

_COMPARISON_OPS = ("=", "==", "!=", "<>", "<", "<=", ">", ">=")


class _Parser:
    """Token-cursor parser; one instance per query string."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- cursor helpers -----------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._current
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _error(self, message: str, at: Token | None = None) -> ParseError:
        """A ParseError pointing at ``at`` (default: the current token).

        Every parser raise goes through here so the error always carries
        the offending token's text and source position — the analyzer's
        caret renderer depends on both being populated.
        """
        token = at if at is not None else self._current
        shown = token.value or "<end of query>"
        return ParseError(
            f"{message} (got {shown!r} at position {token.position})",
            token=token.value,
            position=token.position,
            end=token.end,
        )

    @property
    def _prev_end(self) -> int:
        """End offset of the most recently consumed token."""
        return self._tokens[max(0, self._pos - 1)].end

    @staticmethod
    def _merge(left: Expr, right: Expr) -> Span | None:
        lspan, rspan = span_of(left), span_of(right)
        if lspan is None:
            return rspan
        return lspan.union(rspan)

    def _expect_keyword(self, *names: str) -> Token:
        if self._current.is_keyword(*names):
            return self._advance()
        raise self._error(f"expected {' or '.join(names)}")

    def _expect_op(self, op: str) -> Token:
        if self._current.is_op(op):
            return self._advance()
        raise self._error(f"expected {op!r}")

    def _accept_keyword(self, *names: str) -> bool:
        if self._current.is_keyword(*names):
            self._advance()
            return True
        return False

    def _accept_op(self, op: str) -> bool:
        if self._current.is_op(op):
            self._advance()
            return True
        return False

    def _expect_ident(self, what: str) -> str:
        if self._current.type is TokenType.IDENT:
            return self._advance().value
        raise self._error(f"expected {what}")

    # -- statement ----------------------------------------------------------

    def parse_statement(self) -> SelectStatement:
        self._expect_keyword("SELECT")
        select = self._parse_select_list()

        self._expect_keyword("FROM")
        source = self._expect_ident("stream source name")
        source_alias: str | None = None
        if self._current.type is TokenType.IDENT:
            source_alias = self._advance().value

        join: JoinClause | None = None
        if self._accept_keyword("JOIN"):
            join_source = self._expect_ident("join source name")
            join_alias: str | None = None
            if self._current.type is TokenType.IDENT:
                join_alias = self._advance().value
            self._expect_keyword("ON")
            condition = self._parse_expr()
            join = JoinClause(source=join_source, condition=condition, alias=join_alias)

        where: Expr | None = None
        if self._accept_keyword("WHERE"):
            where = self._parse_expr()

        group_by: tuple[Expr, ...] = ()
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by = tuple(self._parse_expr_list())

        window: WindowSpec | None = None
        if self._current.is_keyword("WINDOW"):
            window = self._parse_window()

        having: Expr | None = None
        if self._accept_keyword("HAVING"):
            having = self._parse_expr()

        order_by: list[tuple[Expr, bool]] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            while True:
                expr = self._parse_expr()
                descending = False
                if self._accept_keyword("DESC"):
                    descending = True
                else:
                    self._accept_keyword("ASC")
                order_by.append((expr, descending))
                if not self._accept_op(","):
                    break

        limit: int | None = None
        if self._accept_keyword("LIMIT"):
            token = self._current
            if token.type is not TokenType.NUMBER:
                raise self._error("expected an integer after LIMIT")
            self._advance()
            limit = int(float(token.value))

        into: str | None = None
        into_stream: str | None = None
        if self._accept_keyword("INTO"):
            # INTO STREAM <name> registers a derived stream; INTO <name>
            # tees into a result table. STREAM is not reserved, so it
            # arrives as an identifier.
            first = self._expect_ident("table or stream name after INTO")
            if (
                first.upper() == "STREAM"
                and self._current.type is TokenType.IDENT
            ):
                into_stream = self._advance().value
            else:
                into = first

        self._accept_op(";")
        if self._current.type is not TokenType.EOF:
            raise self._error("unexpected trailing input")

        return SelectStatement(
            select=tuple(select),
            source=source,
            source_alias=source_alias,
            join=join,
            where=where,
            group_by=group_by,
            window=window,
            having=having,
            limit=limit,
            into=into,
            into_stream=into_stream,
            order_by=tuple(order_by),
        )

    def _parse_select_list(self) -> list[SelectItem]:
        items: list[SelectItem] = []
        while True:
            if self._current.is_op("*"):
                star = self._advance()
                star_span = Span(star.position, star.end)
                items.append(SelectItem(Star(span=star_span), span=star_span))
            else:
                start = self._current.position
                expr = self._parse_expr()
                alias: str | None = None
                if self._accept_keyword("AS"):
                    # Aliases may collide with soft keywords like "long".
                    if self._current.type in (TokenType.IDENT, TokenType.KEYWORD):
                        alias = self._advance().value
                    else:
                        raise self._error("expected alias name after AS")
                elif self._current.type is TokenType.IDENT:
                    alias = self._advance().value
                items.append(
                    SelectItem(expr, alias, span=Span(start, self._prev_end))
                )
            if not self._accept_op(","):
                return items

    def _parse_expr_list(self) -> list[Expr]:
        exprs = [self._parse_expr()]
        while self._accept_op(","):
            exprs.append(self._parse_expr())
        return exprs

    def _parse_window(self) -> WindowSpec:
        start = self._expect_keyword("WINDOW").position
        size, size_is_count = self._parse_duration()
        slide: float | None = None
        slide_is_count = size_is_count
        if self._accept_keyword("EVERY"):
            slide_at = self._current
            slide, slide_is_count = self._parse_duration()
            if slide_is_count != size_is_count:
                raise self._error(
                    "window size and EVERY slide must both be time or both "
                    "be tweet counts",
                    at=slide_at,
                )
        span = Span(start, self._prev_end)
        if size_is_count:
            return WindowSpec(
                size_count=int(size),
                slide_count=int(slide) if slide is not None else None,
                span=span,
            )
        return WindowSpec(size_seconds=size, slide_seconds=slide, span=span)

    def _parse_duration(self) -> tuple[float, bool]:
        """Returns (magnitude, is_count): seconds, or a tweet count."""
        token = self._current
        if token.type is not TokenType.NUMBER:
            raise self._error("expected a number in window duration")
        self._advance()
        magnitude = float(token.value)
        unit = self._current
        if unit.type is TokenType.KEYWORD and unit.value in _UNIT_SECONDS:
            self._advance()
            return magnitude * _UNIT_SECONDS[unit.value], False
        if unit.is_keyword("TWEET", "TWEETS"):
            self._advance()
            if magnitude != int(magnitude) or magnitude <= 0:
                raise self._error(
                    "tweet-count windows need a positive integer", at=token
                )
            return magnitude, True
        raise self._error(
            "expected a time unit (seconds/minutes/hours/days) or TWEETS"
        )

    # -- expressions --------------------------------------------------------

    def _parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._accept_keyword("OR"):
            right = self._parse_and()
            left = BinaryOp("OR", left, right, span=self._merge(left, right))
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self._accept_keyword("AND"):
            right = self._parse_not()
            left = BinaryOp("AND", left, right, span=self._merge(left, right))
        return left

    def _parse_not(self) -> Expr:
        if self._current.is_keyword("NOT"):
            start = self._advance().position
            operand = self._parse_not()
            inner = span_of(operand)
            span = Span(start, inner.end if inner else self._prev_end)
            return UnaryOp("NOT", operand, span=span)
        return self._parse_comparison()

    def _parse_comparison(self) -> Expr:
        left = self._parse_additive()
        token = self._current
        if token.type is TokenType.OP and token.value in _COMPARISON_OPS:
            self._advance()
            op = "=" if token.value == "==" else token.value
            right = self._parse_additive()
            return BinaryOp(op, left, right, span=self._merge(left, right))
        if token.is_keyword("CONTAINS", "MATCHES", "LIKE"):
            self._advance()
            right = self._parse_additive()
            return BinaryOp(
                token.value, left, right, span=self._merge(left, right)
            )
        if token.is_keyword("IS"):
            self._advance()
            negated = self._accept_keyword("NOT")
            self._expect_keyword("NULL")
            lspan = span_of(left)
            span = Span(
                lspan.start if lspan else token.position, self._prev_end
            )
            return UnaryOp(
                "IS NOT NULL" if negated else "IS NULL", left, span=span
            )
        if token.is_keyword("BETWEEN"):
            self._advance()
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            return BinaryOp(
                "AND",
                BinaryOp(">=", left, low, span=self._merge(left, low)),
                BinaryOp("<=", left, high, span=self._merge(left, high)),
                span=self._merge(left, high),
            )
        negated_in = False
        if token.is_keyword("NOT"):
            # NOT here can only begin NOT IN (bare NOT was consumed earlier).
            self._advance()
            self._expect_keyword("IN")
            negated_in = True
            token = self._current
        elif token.is_keyword("IN"):
            self._advance()
        else:
            return left
        result = self._parse_in_rhs(left)
        if negated_in:
            return UnaryOp("NOT", result, span=span_of(result))
        return result

    def _parse_in_rhs(self, operand: Expr) -> Expr:
        if self._current.is_op("["):
            bbox = self._parse_bbox()
            return BinaryOp(
                "IN_BBOX", operand, bbox, span=self._merge(operand, bbox)
            )
        self._expect_op("(")
        values = [self._parse_expr()]
        while self._accept_op(","):
            values.append(self._parse_expr())
        self._expect_op(")")
        ospan = span_of(operand)
        span = Span(
            ospan.start if ospan else self._prev_end, self._prev_end
        )
        return InList(operand, tuple(values), span=span)

    def _parse_bbox(self) -> BBox:
        open_token = self._expect_op("[")
        start = open_token.position
        if self._accept_keyword("BOUNDING"):
            self._expect_keyword("BOX")
            self._expect_keyword("FOR")
            name_parts: list[str] = []
            while not self._current.is_op("]"):
                token = self._advance()
                if token.type is TokenType.EOF:
                    raise self._error("unterminated bounding box literal")
                name_parts.append(token.value)
            self._expect_op("]")
            if not name_parts:
                raise self._error("bounding box name missing")
            return BBox(
                name=" ".join(name_parts), span=Span(start, self._prev_end)
            )
        # [bbox south, west, north, east]
        head = self._current
        if head.type is TokenType.IDENT and head.value.lower() == "bbox":
            self._advance()
            coords: list[float] = []
            for index in range(4):
                if index:
                    self._expect_op(",")
                sign = -1.0 if self._accept_op("-") else 1.0
                token = self._current
                if token.type is not TokenType.NUMBER:
                    raise self._error("expected a coordinate number")
                self._advance()
                coords.append(sign * float(token.value))
            self._expect_op("]")
            return BBox(
                coords=(coords[0], coords[1], coords[2], coords[3]),
                span=Span(start, self._prev_end),
            )
        raise self._error("expected 'bounding box for <name>' or 'bbox s, w, n, e'")

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while self._current.is_op("+", "-"):
            op = self._advance().value
            right = self._parse_multiplicative()
            left = BinaryOp(op, left, right, span=self._merge(left, right))
        return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while self._current.is_op("*", "/", "%"):
            op = self._advance().value
            right = self._parse_unary()
            left = BinaryOp(op, left, right, span=self._merge(left, right))
        return left

    def _parse_unary(self) -> Expr:
        if self._current.is_op("-"):
            start = self._advance().position
            operand = self._parse_unary()
            return UnaryOp("NEG", operand, span=Span(start, self._prev_end))
        if self._accept_op("+"):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self._current
        tspan = Span(token.position, token.end)
        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.value
            return Literal(
                float(text) if "." in text else int(text), span=tspan
            )
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.value, span=tspan)
        if token.is_keyword("NULL"):
            self._advance()
            return Literal(None, span=tspan)
        if token.is_keyword("TRUE"):
            self._advance()
            return Literal(True, span=tspan)
        if token.is_keyword("FALSE"):
            self._advance()
            return Literal(False, span=tspan)
        if token.is_op("("):
            self._advance()
            inner = self._parse_expr()
            self._expect_op(")")
            return inner
        if token.is_op("["):
            return self._parse_bbox()
        if token.type is TokenType.IDENT:
            self._advance()
            if self._accept_op("("):
                return self._finish_call(token.value, token.position)
            return FieldRef(token.value, span=tspan)
        # Soft keywords: time units double as builtin function names
        # (``hour(created_at)``) when directly followed by '('.
        if (
            token.type is TokenType.KEYWORD
            and token.value in _UNIT_SECONDS
            and self._tokens[self._pos + 1].is_op("(")
        ):
            self._advance()  # the keyword
            self._advance()  # '('
            return self._finish_call(token.value, token.position)
        raise self._error("expected an expression")

    def _finish_call(self, name: str, start: int) -> FuncCall:
        distinct = self._accept_keyword("DISTINCT")
        args: list[Expr] = []
        if not self._current.is_op(")"):
            while True:
                if self._current.is_op("*"):
                    star = self._advance()
                    args.append(Star(span=Span(star.position, star.end)))
                else:
                    args.append(self._parse_expr())
                if not self._accept_op(","):
                    break
        self._expect_op(")")
        return FuncCall(
            name=name.lower(),
            args=tuple(args),
            distinct=distinct,
            span=Span(start, self._prev_end),
        )


def parse(query: str) -> SelectStatement:
    """Parse a TweeQL query string into a :class:`SelectStatement`.

    Raises:
        LexError: on malformed tokens.
        ParseError: on malformed syntax.
    """
    return _Parser(tokenize(query)).parse_statement()
