"""Reproduction of *Tweets as Data: Demonstration of TweeQL and TwitInfo*
(Marcus, Bernstein, Badar, Karger, Madden, Miller — SIGMOD 2011).

Two systems, as in the paper:

- **TweeQL** (:class:`repro.TweeQL`) — a SQL-like stream query language and
  processor over a (simulated) Twitter streaming API, with UDFs for
  sentiment, geocoding, and entity extraction, selectivity-aware API filter
  choice, eddy-style adaptive filtering, confidence-triggered aggregation,
  and caching/batching/async handling of high-latency web-service calls.
- **TwitInfo** (:class:`repro.twitinfo.TwitInfoApp`) — an event timeline
  application built on TweeQL: peak detection, peak labeling, sentiment and
  link aggregation, maps, and a dashboard.

Quickstart::

    from repro import TweeQL
    from repro.twitter import soccer_match_scenario

    session = TweeQL.for_scenarios(soccer_match_scenario(seed=7))
    rows = session.query(
        "SELECT sentiment(text), text FROM twitter "
        "WHERE text contains 'tevez';"
    ).fetch(5)
"""

from repro.clock import VirtualClock
from repro.engine import EngineConfig, QueryHandle, TweeQL
from repro.engine.confidence import ConfidencePolicy
from repro.engine.resilience import FaultPlan, ServiceFaultModel, StreamDrop
from repro.errors import TweeQLError
from repro.sql import parse

__version__ = "0.1.0"

__all__ = [
    "TweeQL",
    "EngineConfig",
    "ConfidencePolicy",
    "FaultPlan",
    "ServiceFaultModel",
    "StreamDrop",
    "QueryHandle",
    "VirtualClock",
    "TweeQLError",
    "parse",
    "__version__",
]
