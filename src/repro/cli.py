"""The TweeQL command-line demo.

Section 4: "The TweeQL demo will feature a command line query interface
that is familiar to most database users. We will offer the audience a
selection of pre-built queries, which they can copy and paste into the
command line to view live streaming results on their screen."

Usage::

    tweeql repl  --scenario soccer            # interactive queries
    tweeql query --scenario soccer --sql "SELECT …" [--rows 20]
    tweeql check queries/*.tql --strict       # static analysis, no execution
    tweeql check --sql "SELECT …" --format=json
    tweeql explain queries/*.tql              # plans, nothing executes
    tweeql explain --sql "SELECT …" --analyze --trace out.json
    tweeql twitinfo --scenario earthquakes    # print a dashboard
    tweeql twitinfo --scenario soccer --html dashboard.html
    tweeql fidelity --scenario election --rate 0.01 --seed 42
    tweeql fidelity --scenario botflood --rate 0.1 --out report.json

Inside the REPL: end a query with ``;`` to run it, or use the dot
commands ``.help``, ``.examples``, ``.explain <sql>``, ``.check <sql>``,
``.schema``, ``.functions``, ``.quit``. Queries are statically analyzed
before they run; warnings print ahead of the first result row.

``tweeql check`` exits non-zero when any query has errors — or, with
``--strict``, warnings. See ``docs/ANALYSIS.md`` for the diagnostic
code catalogue.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import TweeQL
from repro.errors import TweeQLError
from repro.twitinfo import TwitInfoApp
from repro.twitter.models import TWITTER_SCHEMA
from repro.twitter.users import UserPopulation
from repro.twitter.workloads import (
    Scenario,
    earthquake_scenario,
    news_month_scenario,
    soccer_match_scenario,
)

#: Pre-built queries offered to the audience (§4), adapted to the scenarios.
EXAMPLE_QUERIES: tuple[tuple[str, str], ...] = (
    (
        "sentiment + geocode (paper §2, query 1)",
        "SELECT sentiment(text), latitude(loc), longitude(loc) "
        "FROM twitter WHERE text contains 'obama';",
    ),
    (
        "keyword + location filter (paper §2, query 2)",
        "SELECT text FROM twitter WHERE text contains 'obama' "
        "AND location in [bounding box for NYC];",
    ),
    (
        "regional average sentiment (paper §2, query 3)",
        "SELECT AVG(sentiment(text)), floor(latitude(loc)) AS lat, "
        "floor(longitude(loc)) AS long FROM twitter "
        "WHERE text contains 'obama' GROUP BY lat, long WINDOW 3 hours;",
    ),
    (
        "goal reactions per minute",
        "SELECT COUNT(*) AS tweets, first(text) AS example FROM twitter "
        "WHERE text contains 'goal' WINDOW 1 minutes;",
    ),
    (
        "earthquake mention volume",
        "SELECT COUNT(*) AS n FROM twitter WHERE text contains 'earthquake' "
        "WINDOW 10 minutes;",
    ),
)

_SCENARIOS = ("soccer", "earthquakes", "news", "all")


def build_scenarios(name: str, seed: int, population_size: int) -> list[Scenario]:
    """Instantiate the named canned scenario(s) from §4 of the paper."""
    if name not in _SCENARIOS:
        raise SystemExit(f"unknown scenario {name!r}; pick from {_SCENARIOS}")
    population = UserPopulation(size=population_size, seed=seed)
    scenarios: list[Scenario] = []
    if name in ("soccer", "all"):
        scenarios.append(soccer_match_scenario(seed=seed, population=population))
    if name in ("earthquakes", "all"):
        scenarios.append(
            earthquake_scenario(seed=seed, population=population, intensity=0.5)
        )
    if name in ("news", "all"):
        scenarios.append(
            news_month_scenario(
                seed=seed, population=population, days=7, n_stories=3,
                intensity=0.5,
            )
        )
    return scenarios


def _resilience_config_kwargs(args: argparse.Namespace) -> dict:
    """EngineConfig kwargs for the fault-tolerance flags."""
    kwargs: dict = {
        "retries": getattr(args, "retries", 0),
        "stream_reconnect": not getattr(args, "no_stream_reconnect", False),
    }
    deadline_ms = getattr(args, "deadline_ms", None)
    if deadline_ms is not None:
        kwargs["retry_deadline_seconds"] = deadline_ms / 1000.0
    plan_path = getattr(args, "fault_plan", None)
    if plan_path is not None:
        from repro.engine.resilience import FaultPlan

        kwargs["fault_plan"] = FaultPlan.from_file(plan_path)
    return kwargs


def build_session(args: argparse.Namespace) -> tuple[TweeQL, list[Scenario]]:
    from repro import EngineConfig

    scenarios = build_scenarios(args.scenario, args.seed, args.population)
    config = EngineConfig(
        latency_mode=getattr(args, "latency_mode", "cached"),
        use_eddy=getattr(args, "use_eddy", False),
        partial_results=getattr(args, "partial_results", False),
        workers=getattr(args, "workers", 1),
        batch_size=getattr(args, "batch_size", 256),
        shard_backend=getattr(args, "shard_backend", "thread"),
        columnar=not getattr(args, "no_columnar", False),
        shared_scan=getattr(args, "shared", False),
        sanitize=getattr(args, "sanitize", False),
        storage_path=getattr(args, "store", None),
        backfill=getattr(args, "backfill", False),
        **_resilience_config_kwargs(args),
    )
    return TweeQL.for_scenarios(*scenarios, config=config), scenarios


def _format_row(row: dict, max_width: int = 40) -> str:
    parts = []
    for key, value in row.items():
        if key.startswith("__"):
            continue
        text = f"{value}"
        if len(text) > max_width:
            text = text[: max_width - 1] + "…"
        parts.append(f"{key}={text}")
    return "  ".join(parts)


def run_query(session: TweeQL, sql: str, rows: int) -> int:
    """Run one query, printing up to ``rows`` results. Returns row count."""
    handle = session.query(sql)
    printed = 0
    try:
        for row in handle:
            print(_format_row(row))
            printed += 1
            if printed >= rows:
                break
    finally:
        handle.close()
    print(f"-- {printed} row(s); stats: {handle.stats.as_dict()}")
    return printed


def run_shared_queries(session: TweeQL, sqls: list[str], rows: int) -> None:
    """Run several queries as tenants of one shared scan (``--shared``).

    One Firehose connection and one scan serve every query; results print
    per query, followed by the group's admission/routing/sharing counters.
    """
    group = session.shared()
    handles = [group.query(sql) for sql in sqls]
    try:
        for sql, handle in zip(sqls, handles):
            print(f"== {sql}")
            printed = 0
            try:
                for row in handle:
                    print(_format_row(row))
                    printed += 1
                    if printed >= rows:
                        break
            finally:
                handle.close()
            print(f"-- {printed} row(s); stats: {handle.stats.as_dict()}")
    finally:
        group.close()
    print(f"-- shared scan: {group.stats.as_dict()}")


def repl(session: TweeQL, rows: int) -> None:
    """The interactive loop."""
    print("TweeQL demo shell — type .help for commands, .examples for "
          "pre-built queries.")
    buffer: list[str] = []
    while True:
        prompt = "tweeql> " if not buffer else "   ...> "
        try:
            line = input(prompt)
        except EOFError:
            print()
            return
        stripped = line.strip()
        if not buffer and stripped.startswith("."):
            command, _, argument = stripped.partition(" ")
            if command in (".quit", ".exit"):
                return
            if command == ".help":
                print(
                    ".examples            show pre-built queries\n"
                    ".explain <sql>       show the plan without running\n"
                    ".check <sql>         static analysis without running\n"
                    ".schema              show the twitter stream schema\n"
                    ".functions           list registered functions/UDFs\n"
                    ".quit                leave"
                )
            elif command == ".examples":
                for title, sql in EXAMPLE_QUERIES:
                    print(f"-- {title}\n{sql}\n")
            elif command == ".explain":
                try:
                    print(session.explain(argument))
                except TweeQLError as exc:
                    print(f"error: {exc}")
            elif command == ".check":
                print(session.analyze(argument).render())
            elif command == ".schema":
                print("twitter(" + ", ".join(TWITTER_SCHEMA) + ")")
            elif command == ".functions":
                print(", ".join(session.registry.names()))
            else:
                print(f"unknown command {command!r}; try .help")
            continue
        buffer.append(line)
        if stripped.endswith(";"):
            sql = "\n".join(buffer)
            buffer = []
            # Analyze before running: errors print with carets and skip
            # execution; warnings/notes print ahead of the result rows.
            result = session.analyze(sql)
            if not result.ok():
                print(result.render())
                continue
            for diag in result.diagnostics:
                print(diag.render(sql))
            try:
                run_query(session, sql, rows)
            except TweeQLError as exc:
                print(f"error: {exc}")


def split_statements(text: str) -> list[str]:
    """Split a ``.tql`` file into statements.

    ``--`` starts a line comment; statements end at ``;``. Returned
    statements keep their trailing semicolon and original spacing (so
    diagnostic spans line up with what the author wrote).
    """
    lines = []
    for line in text.splitlines():
        stripped = line.lstrip()
        lines.append("" if stripped.startswith("--") else line)
    statements: list[str] = []
    # Note: a ';' inside a string literal would split early; example
    # files simply avoid that.
    for chunk in "\n".join(lines).split(";"):
        if chunk.strip():
            statements.append(chunk.strip() + ";")
    return statements


def run_check(args: argparse.Namespace) -> int:
    """``tweeql check``: static analysis only; no query ever executes.

    Exit status is 0 when every query is clean, 1 when any has errors —
    or warnings under ``--strict``.
    """
    from repro import EngineConfig
    from repro.sql.analysis import analyze_sql

    config = EngineConfig(
        latency_mode=getattr(args, "latency_mode", "cached"),
        use_eddy=getattr(args, "use_eddy", False),
        partial_results=getattr(args, "partial_results", False),
        workers=getattr(args, "workers", 1),
        batch_size=getattr(args, "batch_size", 256),
        shard_backend=getattr(args, "shard_backend", "thread"),
        columnar=not getattr(args, "no_columnar", False),
        sanitize=getattr(args, "sanitize", False),
    )
    queries: list[tuple[str, str]] = []
    for sql in args.sql or ():
        queries.append(("<--sql>", sql))
    for path in args.files:
        with open(path, encoding="utf-8") as f:
            for index, statement in enumerate(split_statements(f.read()), 1):
                queries.append((f"{path}:{index}", statement))
    if not queries:
        print("nothing to check: pass --sql or .tql files", file=sys.stderr)
        return 2

    failed = False
    reports = []
    for label, sql in queries:
        result = analyze_sql(sql, config=config)
        if not result.ok(strict=args.strict):
            failed = True
        if args.format == "json":
            reports.append({"source": label, "sql": sql, **result.as_dict()})
        else:
            print(f"== {label}")
            print(result.render())
            print()
    if args.format == "json":
        print(json.dumps({"ok": not failed, "queries": reports}, indent=2))
    else:
        verdict = "FAILED" if failed else "ok"
        print(f"-- checked {len(queries)} quer"
              f"{'y' if len(queries) == 1 else 'ies'}: {verdict}")
    return 1 if failed else 0


def run_explain(args: argparse.Namespace) -> int:
    """``tweeql explain``: show query plans, optionally executed + profiled.

    Without ``--analyze`` this prints each plan without running anything.
    With ``--analyze`` every query is planned with tracing on, executed to
    completion (cap with ``--limit`` on unbounded streams), and rendered
    with per-operator rows/batches/timing, service accounting, and a span
    census. ``--trace FILE`` additionally writes a Chrome trace JSON
    (load it in ``chrome://tracing`` or Perfetto) covering every analyzed
    query, one process per query.
    """
    queries: list[tuple[str, str]] = []
    for sql in args.sql or ():
        queries.append(("<--sql>", sql))
    for path in args.files:
        with open(path, encoding="utf-8") as f:
            for index, statement in enumerate(split_statements(f.read()), 1):
                queries.append((f"{path}:{index}", statement))
    if not queries:
        print("nothing to explain: pass --sql or .tql files", file=sys.stderr)
        return 2
    if args.trace and not args.analyze:
        print("--trace requires --analyze (spans only exist once the "
              "query runs)", file=sys.stderr)
        return 2

    failed = False
    traces: list[tuple[str, object]] = []
    for label, sql in queries:
        # A fresh session per statement keeps the virtual clock (and so
        # every reported timing) independent of statement order.
        session, _ = build_session(args)
        print(f"== {label}")
        try:
            if not args.analyze:
                print(session.explain(sql))
            else:
                session.config.tracing = True
                handle = session.query(sql)
                try:
                    print(handle.explain(analyze=True, limit=args.limit))
                finally:
                    handle.close()
                if args.trace:
                    traces.append((label, handle.tracer))
        except TweeQLError as exc:
            print(f"error: {exc}")
            failed = True
        print()
    if args.trace and traces:
        from repro.obs.export import write_chrome_trace

        write_chrome_trace(traces, args.trace)
        count = len(traces)
        print(f"-- wrote Chrome trace for {count} "
              f"quer{'y' if count == 1 else 'ies'} to {args.trace}")
    return 1 if failed else 0


def run_twitinfo(args: argparse.Namespace) -> None:
    """Track the scenario's canonical event and print its dashboard."""
    session, scenarios = build_session(args)
    scenario = scenarios[0]
    app = TwitInfoApp(session)
    names = {
        "soccer": "Soccer: Manchester City vs. Liverpool",
        "earthquakes": "Earthquake timeline",
        "news": "A week in Barack Obama's life",
    }
    event = app.track(
        names.get(args.scenario, scenario.name),
        scenario.keywords,
        start=scenario.start,
        end=scenario.end,
        bin_seconds=args.bin_seconds,
    )
    if args.serve is not None:
        from repro.twitinfo.server import TwitInfoServer

        server = TwitInfoServer(app, port=args.serve).start()
        print(f"TwitInfo serving at {server.url} — Ctrl-C to stop")
        try:
            import time

            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            pass
        finally:
            server.stop()
        return

    dashboard = app.dashboard(event, peak_label=args.peak)
    if args.html:
        with open(args.html, "w", encoding="utf-8") as f:
            f.write(dashboard.render_html())
        print(f"wrote {args.html}")
    else:
        print(dashboard.render_text())
    session.close()


def run_fidelity(args: argparse.Namespace) -> int:
    """``tweeql fidelity``: firehose-vs-sample bias measurement.

    Builds the named scenario, replays it through the fidelity harness
    (one lossless firehose pass, one ``statuses/sample`` pass at
    ``--rate``), prints the score summary, and emits the deterministic
    JSON report — to ``--out`` when given, stdout otherwise. Output is
    byte-identical across runs for the same (scenario, seed, rate).
    """
    from repro.fidelity import FidelityRun, build_scenario

    scenario = build_scenario(
        args.scenario,
        seed=args.seed,
        population_size=args.population,
        intensity=args.intensity,
    )
    run = FidelityRun(
        scenario,
        rate=args.rate,
        seed=args.seed,
        bin_seconds=args.bin_seconds,
        topk=args.topk,
        tolerance_bins=args.tolerance_bins,
    )
    report = run.execute()
    for line in report.summary_lines():
        print(line)
    text = report.to_json_text()
    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(text)
        print(f"wrote {args.out}")
    else:
        print(text, end="")
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tweeql",
        description="TweeQL/TwitInfo demo (SIGMOD 2011 reproduction)",
    )
    parser.add_argument("--seed", type=int, default=11, help="workload seed")
    parser.add_argument(
        "--population", type=int, default=2000, help="synthetic user count"
    )
    parser.add_argument(
        "--scenario",
        default="soccer",
        choices=_SCENARIOS,
        help="which canned §4 scenario feeds the stream",
    )
    parser.add_argument(
        "--latency-mode",
        default="cached",
        choices=("blocking", "cached", "batched", "async"),
        help="how high-latency UDFs reach their web services",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="shard each query across N parallel worker pipelines "
        "(1 = serial; results are identical at any worker count)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=256,
        metavar="N",
        help="rows per batch between operators (1 = row-at-a-time; "
        "results are identical at any size)",
    )
    parser.add_argument(
        "--shard-backend",
        default="thread",
        choices=("thread", "process"),
        help="with --workers N: run worker pipelines in threads (share "
        "the GIL) or forked processes (true CPU parallelism for "
        "Python-bound predicates; plans that must share the session "
        "clock fall back to threads with an EXPLAIN note)",
    )
    parser.add_argument(
        "--no-columnar",
        action="store_true",
        help="keep the legacy row-wise batch layout instead of columnar "
        "batches with vectorized predicates (results are identical)",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="run queries under the TQLSAN invariant sanitizer: check "
        "seq monotonicity, punctuation, ColumnBatch coherence, handoff "
        "immutability, and lock ordering at every operator boundary "
        "(TQL9xx violations; also via TWEEQL_SAN=1; see docs/SANITIZER.md)",
    )
    parser.add_argument(
        "--use-eddy",
        action="store_true",
        help="adaptive (eddy) ordering for local predicates",
    )
    parser.add_argument(
        "--partial-results",
        action="store_true",
        help="with --latency-mode async: emit NULL instead of blocking on "
        "in-flight service calls",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="retry failed service calls up to N times with exponential "
        "backoff (0 = fail fast, the pre-resilience behavior)",
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="per-call deadline across all retry attempts, in virtual "
        "milliseconds",
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="FILE",
        help="inject the deterministic failure schedule from this JSON "
        "fault-plan file (see docs/RESILIENCE.md)",
    )
    parser.add_argument(
        "--shared",
        action="store_true",
        help="multi-tenant shared-scan mode: queries given via repeated "
        "--sql (and TwitInfo's event queries) share one stream connection "
        "and one scan instead of opening one each",
    )
    parser.add_argument(
        "--no-stream-reconnect",
        action="store_true",
        help="do not auto-reconnect dropped stream connections (gap "
        "tweets are lost instead of recovered)",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="FILE",
        help="historical tier: archive every delivered tweet into this "
        "SQLite file behind the live path (FTS5/R-tree-indexed; see "
        "docs/STORAGE.md)",
    )
    parser.add_argument(
        "--backfill",
        action="store_true",
        help="with --store, split windowed queries into instant "
        "backfill-from-storage + live tail (merged on timestamp order)",
    )
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("repl", help="interactive query shell")

    query = sub.add_parser("query", help="run one or more queries and exit")
    query.add_argument(
        "--sql", action="append", required=True, metavar="SQL",
        help="query to run (repeatable; with --shared every query rides "
        "one shared scan)",
    )
    query.add_argument("--rows", type=int, default=20)

    check = sub.add_parser(
        "check", help="statically analyze queries without running them"
    )
    check.add_argument(
        "files", nargs="*", metavar="FILE.tql",
        help="query files ('--' comments, ';'-terminated statements)",
    )
    check.add_argument(
        "--sql", action="append", metavar="SQL",
        help="check this query text (repeatable)",
    )
    check.add_argument(
        "--strict", action="store_true",
        help="treat warnings as failures (non-zero exit)",
    )
    check.add_argument(
        "--format", default="text", choices=("text", "json"),
        help="diagnostic output format",
    )

    explain = sub.add_parser(
        "explain", help="show query plans; --analyze runs and profiles them"
    )
    explain.add_argument(
        "files", nargs="*", metavar="FILE.tql",
        help="query files ('--' comments, ';'-terminated statements)",
    )
    explain.add_argument(
        "--sql", action="append", metavar="SQL",
        help="explain this query text (repeatable)",
    )
    explain.add_argument(
        "--analyze", action="store_true",
        help="execute each query with tracing on and annotate the plan "
        "with rows, batches, and virtual-clock timings",
    )
    explain.add_argument(
        "--trace", default=None, metavar="FILE",
        help="with --analyze: write a Chrome trace JSON covering every "
        "analyzed query (open in chrome://tracing or Perfetto)",
    )
    explain.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="with --analyze: cap rows drained per query",
    )

    twitinfo = sub.add_parser("twitinfo", help="print a TwitInfo dashboard")
    twitinfo.add_argument("--peak", default=None, help="drill into one peak")
    twitinfo.add_argument("--html", default=None, help="write an HTML page")
    twitinfo.add_argument("--bin-seconds", type=float, default=60.0)
    twitinfo.add_argument(
        "--serve", type=int, default=None, metavar="PORT",
        help="start the TwitInfo web server on PORT instead of printing",
    )

    fidelity = sub.add_parser(
        "fidelity",
        help="measure firehose-vs-sample bias for a scenario",
        description="Replay one scenario through a lossless firehose pass "
        "and a rate-limited statuses/sample pass, run the same TwitInfo "
        "event on each, and report fidelity scores, coverage confidence, "
        "and ground-truth recall as deterministic JSON.",
    )
    # --scenario/--seed/--population shadow main-parser dests; SUPPRESS
    # keeps a pre-subcommand value (e.g. ``tweeql --seed 7 fidelity``)
    # from being clobbered by a subparser default.
    from repro.fidelity.harness import SCENARIO_BUILDERS

    fidelity.add_argument(
        "--scenario",
        default=argparse.SUPPRESS,
        choices=sorted(SCENARIO_BUILDERS),
        help="which workload to measure (default: soccer)",
    )
    fidelity.add_argument(
        "--seed", type=int, default=argparse.SUPPRESS, help="workload seed"
    )
    fidelity.add_argument(
        "--population", type=int, default=argparse.SUPPRESS,
        help="synthetic user count",
    )
    fidelity.add_argument(
        "--rate", type=float, default=0.01, metavar="P",
        help="statuses/sample probability for the sample pass",
    )
    fidelity.add_argument(
        "--intensity", type=float, default=1.0,
        help="scenario traffic multiplier",
    )
    fidelity.add_argument("--bin-seconds", type=float, default=60.0)
    fidelity.add_argument(
        "--topk", type=int, default=10, help="top terms per digest"
    )
    fidelity.add_argument(
        "--tolerance-bins", type=int, default=3,
        help="peak-matching tolerance, in bins",
    )
    fidelity.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the JSON report here instead of stdout",
    )

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``tweeql`` console script."""
    parser = make_parser()
    args = parser.parse_args(argv)
    command = args.command or "repl"
    try:
        if command == "fidelity":
            return run_fidelity(args)
        elif command == "twitinfo":
            run_twitinfo(args)
        elif command == "check":
            return run_check(args)
        elif command == "explain":
            return run_explain(args)
        elif command == "query":
            session, _ = build_session(args)
            try:
                if getattr(args, "shared", False):
                    run_shared_queries(session, args.sql, args.rows)
                else:
                    for sql in args.sql:
                        run_query(session, sql, args.rows)
            finally:
                # Flush the storage writer so --store files are durable.
                session.close()
        else:
            session, _ = build_session(args)
            try:
                repl(session, rows=20)
            finally:
                session.close()
    except TweeQLError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
