"""The fidelity harness: identity at rate 1.0, determinism, structure."""

from __future__ import annotations

import json

import pytest

from repro.errors import RateLimitError
from repro.fidelity import FidelityRun, build_scenario
from repro.fidelity.harness import SCENARIO_BUILDERS


class TestBuildScenario:
    def test_known_names(self):
        assert set(SCENARIO_BUILDERS) == {
            "soccer", "baseball", "earthquakes", "news",
            "election", "cascade", "botflood",
        }

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="botflood"):
            build_scenario("nope")

    def test_builds_with_custom_knobs(self):
        scenario = build_scenario(
            "botflood", seed=7, population_size=150, intensity=0.2
        )
        assert scenario.name == "botflood"
        assert scenario.tweets
        assert scenario.truth.events


class TestRateOneIdentity:
    """At rate 1.0 both passes see the same stream: every score is 1.0."""

    def test_perfect_scores(self, small_botflood):
        report = FidelityRun(small_botflood, rate=1.0, seed=42).execute()
        assert report.scores.perfect
        assert report.scores.overall == 1.0
        assert report.firehose == report.sample
        assert report.coverage.coverage == 1.0


class TestDeterminism:
    def test_same_inputs_same_bytes(self, small_election):
        first = FidelityRun(small_election, rate=0.05, seed=42).execute()
        second = FidelityRun(small_election, rate=0.05, seed=42).execute()
        assert first.to_json_text() == second.to_json_text()

    def test_json_round_trips(self, small_election):
        report = FidelityRun(small_election, rate=0.05, seed=42).execute()
        payload = json.loads(report.to_json_text())
        assert payload["scenario"] == "election"
        assert payload["seed"] == 42
        assert payload["rate"] == 0.05
        assert set(payload["scores"]) == {
            "topk_jaccard", "topk_rank_correlation", "peak_count",
            "peak_timing", "peak_height", "geo", "sentiment", "overall",
        }
        assert {"observed", "eligible", "coverage", "ci_low", "ci_high",
                "confidence", "estimated_total"} <= set(payload["coverage"])
        for side in ("firehose", "sample"):
            assert {"tweets", "positive", "negative", "neutral", "geotagged",
                    "top_terms", "peaks", "truth_recall"} <= set(payload[side])


class TestSampleBudget:
    def test_run_spends_exactly_one_request(self, small_botflood):
        run = FidelityRun(small_botflood, rate=0.1, seed=42, sample_budget=1)
        run.execute()

    def test_exhausted_budget_reports_remaining(self, small_botflood):
        run = FidelityRun(small_botflood, rate=0.1, seed=42, sample_budget=0)
        with pytest.raises(RateLimitError, match="0 remaining"):
            run.execute()


class TestScoresBehaveSensibly:
    def test_scores_in_unit_interval(self, small_cascade):
        report = FidelityRun(small_cascade, rate=0.1, seed=42).execute()
        for value in report.scores.as_tuple():
            assert 0.0 <= value <= 1.0
        assert 0.0 <= report.firehose.truth_recall <= 1.0
        assert 0.0 <= report.sample.truth_recall <= 1.0

    def test_coverage_tracks_rate(self, small_election):
        report = FidelityRun(small_election, rate=0.1, seed=42).execute()
        assert report.coverage.eligible == report.firehose.tweets
        assert report.coverage.observed == report.sample.tweets
        # A 10% Bernoulli sample of thousands of tweets lands near 10%.
        assert 0.05 < report.coverage.coverage < 0.2
        assert report.coverage.ci_low <= report.coverage.coverage <= report.coverage.ci_high

    def test_summary_lines_render(self, small_cascade):
        report = FidelityRun(small_cascade, rate=0.1, seed=42).execute()
        text = "\n".join(report.summary_lines())
        assert "cascade" in text
        assert "coverage" in text
        assert "overall" in text
