"""Golden FidelityReport: the full JSON, pinned byte for byte.

Any change to the scenario generators, the sampler, the detector, the
tokenizer, or the metrics shows up here as a diff. To regenerate after
an intentional change::

    UPDATE_GOLDEN=1 python -m pytest tests/fidelity/test_golden_report.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.fidelity import FidelityRun, build_scenario

GOLDEN_DIR = Path(__file__).parent / "golden"

#: (scenario, rate) → golden file. Small fixed-parameter runs.
CASES = {
    ("botflood", 0.1): "botflood_rate0.1.json",
    ("election", 0.05): "election_rate0.05.json",
}


def _report_text(name: str, rate: float) -> str:
    scenario = build_scenario(name, seed=42, population_size=300, intensity=0.25)
    return FidelityRun(scenario, rate=rate, seed=42).execute().to_json_text()


@pytest.mark.parametrize("name,rate", sorted(CASES))
def test_report_matches_golden(name, rate):
    golden_path = GOLDEN_DIR / CASES[(name, rate)]
    text = _report_text(name, rate)
    if os.environ.get("UPDATE_GOLDEN") == "1":
        GOLDEN_DIR.mkdir(exist_ok=True)
        golden_path.write_text(text, encoding="utf-8")
        pytest.skip(f"golden regenerated: {golden_path.name}")
    assert golden_path.exists(), (
        f"missing golden {golden_path}; run with UPDATE_GOLDEN=1 to create"
    )
    assert text == golden_path.read_text(encoding="utf-8")


def test_golden_files_are_valid_json():
    for filename in CASES.values():
        path = GOLDEN_DIR / filename
        if path.exists():
            payload = json.loads(path.read_text(encoding="utf-8"))
            assert "scores" in payload and "coverage" in payload
