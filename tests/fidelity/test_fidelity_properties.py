"""Property-based suite for the fidelity harness and its metrics.

The pinned identities:

- the harness is **deterministic per seed** — rebuilding the scenario and
  rerunning the harness reproduces the report byte for byte;
- sampled-side volume and coverage are **monotone in the rate** (the
  fixed sampling salt makes lower-rate samples subsets of higher-rate
  ones);
- **rate 1.0 is perfect** — both passes see the same stream, so every
  score is exactly 1.0;
- every score is a **fidelity score in [0, 1]**, whatever the inputs.

Plus algebraic properties of the pure metrics (bounds, symmetry,
identity) over generated inputs.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fidelity import FidelityRun, metrics
from repro.fidelity.coverage import wilson_interval
from repro.twitter.users import UserPopulation
from repro.twitter.workloads import bot_flood_scenario

from .conftest import SEED

#: The rate grid the harness properties sweep. Reports are computed once
#: per module; hypothesis then explores pairs.
RATES = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0)


@pytest.fixture(scope="module")
def reports_by_rate(small_botflood):
    return {
        rate: FidelityRun(small_botflood, rate=rate, seed=SEED).execute()
        for rate in RATES
    }


# ---------------------------------------------------------------------------
# Harness properties
# ---------------------------------------------------------------------------


def _tiny_run(seed: int, rate: float) -> str:
    population = UserPopulation(size=150, seed=seed)
    scenario = bot_flood_scenario(
        seed=seed, population=population, intensity=0.15
    )
    return FidelityRun(scenario, rate=rate, seed=seed).execute().to_json_text()


@settings(max_examples=3, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_deterministic_per_seed(seed):
    """Scenario build + harness run reproduce the report byte for byte."""
    assert _tiny_run(seed, 0.1) == _tiny_run(seed, 0.1)


@settings(max_examples=3, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_rate_one_is_perfect_for_any_seed(seed):
    population = UserPopulation(size=150, seed=seed)
    scenario = bot_flood_scenario(
        seed=seed, population=population, intensity=0.15
    )
    report = FidelityRun(scenario, rate=1.0, seed=seed).execute()
    assert report.scores.perfect
    assert report.firehose == report.sample


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(low=st.sampled_from(RATES), high=st.sampled_from(RATES))
def test_volume_and_coverage_monotone_in_rate(reports_by_rate, low, high):
    if low > high:
        low, high = high, low
    report_low, report_high = reports_by_rate[low], reports_by_rate[high]
    assert report_low.sample.tweets <= report_high.sample.tweets
    assert report_low.coverage.coverage <= report_high.coverage.coverage


@settings(
    max_examples=len(RATES),
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(rate=st.sampled_from(RATES))
def test_all_scores_in_unit_interval_at_every_rate(reports_by_rate, rate):
    report = reports_by_rate[rate]
    for value in report.scores.as_tuple():
        assert 0.0 <= value <= 1.0
    assert 0.0 <= report.scores.overall <= 1.0
    assert 0.0 <= report.coverage.coverage <= 1.0
    assert 0.0 <= report.firehose.truth_recall <= 1.0
    assert 0.0 <= report.sample.truth_recall <= 1.0


def test_rate_one_report_from_grid_is_perfect(reports_by_rate):
    assert reports_by_rate[1.0].scores.perfect


# ---------------------------------------------------------------------------
# Pure-metric properties
# ---------------------------------------------------------------------------

terms = st.lists(
    st.text(alphabet="abcdefgh", min_size=1, max_size=3),
    max_size=8,
    unique=True,
)


@given(a=terms, b=terms)
def test_jaccard_bounds_and_symmetry(a, b):
    score = metrics.topk_jaccard(a, b)
    assert 0.0 <= score <= 1.0
    assert score == metrics.topk_jaccard(b, a)


@given(a=terms)
def test_jaccard_identity(a):
    assert metrics.topk_jaccard(a, a) == 1.0


@given(a=terms, b=terms)
def test_rank_correlation_bounds(a, b):
    assert 0.0 <= metrics.topk_rank_correlation(a, b) <= 1.0


@given(a=terms)
def test_rank_correlation_identity(a):
    assert metrics.topk_rank_correlation(a, a) == 1.0


counts = st.dictionaries(
    st.text(alphabet="xyz", min_size=1, max_size=2),
    st.integers(0, 50),
    max_size=6,
)


@given(p=counts, q=counts)
def test_jsd_bounds_and_symmetry(p, q):
    divergence = metrics.jensen_shannon_divergence(p, q)
    assert 0.0 <= divergence <= 1.0
    assert divergence == pytest.approx(
        metrics.jensen_shannon_divergence(q, p)
    )


@given(p=counts)
def test_jsd_self_is_zero(p):
    assert metrics.jensen_shannon_divergence(p, p) == pytest.approx(0.0, abs=1e-12)


mixes = st.tuples(st.integers(0, 100), st.integers(0, 100), st.integers(0, 100))


@given(a=mixes, b=mixes)
def test_sentiment_score_bounds_and_symmetry(a, b):
    score = metrics.sentiment_score(a, b)
    assert 0.0 <= score <= 1.0
    assert score == pytest.approx(metrics.sentiment_score(b, a))


@given(successes=st.integers(0, 200), extra=st.integers(0, 200))
def test_wilson_interval_bounds_and_coverage(successes, extra):
    trials = successes + extra
    low, high = wilson_interval(successes, trials)
    assert 0.0 <= low <= high <= 1.0
    if trials:
        assert low <= successes / trials + 1e-12
        assert high >= successes / trials - 1e-12


peaks = st.lists(
    st.tuples(
        st.floats(0, 10_000, allow_nan=False), st.floats(1, 1_000, allow_nan=False)
    ),
    max_size=6,
)


@given(reference=peaks, other=peaks)
def test_peak_scores_bounds(reference, other):
    for score in (
        metrics.peak_timing_score(reference, other, 180.0),
        metrics.peak_height_score(reference, other, 180.0),
        metrics.peak_count_score(len(reference), len(other)),
    ):
        assert 0.0 <= score <= 1.0 + 1e-12


@given(reference=peaks, other=peaks)
def test_match_peaks_is_one_to_one_within_tolerance(reference, other):
    matches = metrics.match_peaks(reference, other, 180.0)
    assert len({i for i, _ in matches}) == len(matches)
    assert len({j for _, j in matches}) == len(matches)
    for i, j in matches:
        assert abs(reference[i][0] - other[j][0]) <= 180.0
