"""Fixtures for the fidelity suite.

Scenario generation dominates the suite's runtime, so the reduced-scale
scenarios are session-scoped and shared; tests that need other
parameters build their own. Everything is seeded — the fixtures are
byte-for-byte reproducible.
"""

from __future__ import annotations

import pytest

from repro.twitter.users import UserPopulation
from repro.twitter.workloads import (
    bot_flood_scenario,
    breaking_news_cascade_scenario,
    election_night_scenario,
)

SEED = 42


@pytest.fixture(scope="session")
def fidelity_population():
    return UserPopulation(size=400, seed=SEED)


@pytest.fixture(scope="session")
def small_election(fidelity_population):
    """A reduced election night (a few thousand tweets)."""
    return election_night_scenario(
        seed=SEED, population=fidelity_population, intensity=0.25
    )


@pytest.fixture(scope="session")
def small_cascade(fidelity_population):
    """A reduced breaking-news cascade."""
    return breaking_news_cascade_scenario(
        seed=SEED, population=fidelity_population, intensity=0.3
    )


@pytest.fixture(scope="session")
def small_botflood(fidelity_population):
    """A reduced bot flood."""
    return bot_flood_scenario(
        seed=SEED, population=fidelity_population, intensity=0.3
    )
