"""Unit tests for the pure bias metrics."""

from __future__ import annotations

import pytest

from repro.fidelity import metrics


# ---------------------------------------------------------------------------
# Top-k terms
# ---------------------------------------------------------------------------


class TestTopkJaccard:
    def test_identical(self):
        assert metrics.topk_jaccard(["a", "b", "c"], ["a", "b", "c"]) == 1.0

    def test_order_insensitive(self):
        assert metrics.topk_jaccard(["a", "b"], ["b", "a"]) == 1.0

    def test_disjoint(self):
        assert metrics.topk_jaccard(["a", "b"], ["c", "d"]) == 0.0

    def test_partial(self):
        assert metrics.topk_jaccard(["a", "b", "c"], ["b", "c", "d"]) == 0.5

    def test_both_empty(self):
        assert metrics.topk_jaccard([], []) == 1.0

    def test_one_empty(self):
        assert metrics.topk_jaccard(["a"], []) == 0.0


class TestTopkRankCorrelation:
    def test_identical(self):
        assert metrics.topk_rank_correlation(["a", "b", "c"], ["a", "b", "c"]) == 1.0

    def test_reversed(self):
        assert metrics.topk_rank_correlation(["a", "b", "c"], ["c", "b", "a"]) == 0.0

    def test_disjoint(self):
        assert metrics.topk_rank_correlation(["a", "b"], ["c", "d"]) == 0.0

    def test_both_empty(self):
        assert metrics.topk_rank_correlation([], []) == 1.0

    def test_single_common_term_is_indifferent(self):
        assert metrics.topk_rank_correlation(["a", "b"], ["a", "c"]) == 0.5

    def test_same_set_same_order_different_tail(self):
        # Common terms a, b keep their relative order → tau = 1.
        assert metrics.topk_rank_correlation(["a", "b", "x"], ["a", "b", "y"]) == 1.0

    def test_half_swapped(self):
        # Common a,b,c,d with one adjacent swap: 5 concordant, 1 discordant.
        score = metrics.topk_rank_correlation(
            ["a", "b", "c", "d"], ["a", "b", "d", "c"]
        )
        assert score == pytest.approx((4 / 6 + 1) / 2)


# ---------------------------------------------------------------------------
# Peaks
# ---------------------------------------------------------------------------


class TestMatchPeaks:
    def test_exact_match(self):
        ref = [(0.0, 10.0), (100.0, 20.0)]
        assert metrics.match_peaks(ref, ref, 30.0) == [(0, 0), (1, 1)]

    def test_outside_tolerance_unmatched(self):
        assert metrics.match_peaks([(0.0, 10.0)], [(100.0, 10.0)], 30.0) == []

    def test_greedy_prefers_closest(self):
        ref = [(0.0, 1.0)]
        other = [(25.0, 1.0), (5.0, 1.0)]
        assert metrics.match_peaks(ref, other, 30.0) == [(0, 1)]

    def test_one_to_one(self):
        ref = [(0.0, 1.0), (10.0, 1.0)]
        other = [(5.0, 1.0)]
        matches = metrics.match_peaks(ref, other, 30.0)
        assert len(matches) == 1
        assert matches[0][1] == 0

    def test_rejects_nonpositive_tolerance(self):
        with pytest.raises(ValueError):
            metrics.match_peaks([], [], 0.0)


class TestPeakScores:
    def test_count_perfect(self):
        assert metrics.peak_count_score(3, 3) == 1.0

    def test_count_none_vs_none(self):
        assert metrics.peak_count_score(0, 0) == 1.0

    def test_count_missing_half(self):
        assert metrics.peak_count_score(4, 2) == 0.5

    def test_count_all_phantom(self):
        assert metrics.peak_count_score(0, 3) == 0.0

    def test_timing_perfect(self):
        peaks = [(0.0, 5.0), (600.0, 9.0)]
        assert metrics.peak_timing_score(peaks, peaks, 180.0) == 1.0

    def test_timing_offset(self):
        score = metrics.peak_timing_score([(0.0, 5.0)], [(90.0, 5.0)], 180.0)
        assert score == pytest.approx(0.5)

    def test_timing_unmatched_drags_down(self):
        score = metrics.peak_timing_score(
            [(0.0, 5.0), (1000.0, 5.0)], [(0.0, 5.0)], 180.0
        )
        assert score == pytest.approx(0.5)

    def test_timing_empty_sides(self):
        assert metrics.peak_timing_score([], [], 60.0) == 1.0
        assert metrics.peak_timing_score([(0.0, 1.0)], [], 60.0) == 0.0

    def test_height_rate_corrected(self):
        # A faithful 10% sample: 100-count apex seen as 10.
        score = metrics.peak_height_score(
            [(0.0, 100.0)], [(0.0, 10.0)], 60.0, scale_other=10.0
        )
        assert score == 1.0

    def test_height_ratio(self):
        score = metrics.peak_height_score(
            [(0.0, 100.0)], [(0.0, 50.0)], 60.0
        )
        assert score == pytest.approx(0.5)

    def test_height_empty_sides(self):
        assert metrics.peak_height_score([], [], 60.0) == 1.0
        assert metrics.peak_height_score([], [(0.0, 1.0)], 60.0) == 0.0


class TestTruthRecall:
    def test_inside_window(self):
        assert metrics.truth_recall([50.0], [(0.0, 100.0)], 10.0) == 1.0

    def test_within_tolerance_of_window(self):
        assert metrics.truth_recall([105.0], [(0.0, 100.0)], 10.0) == 1.0

    def test_missed(self):
        assert metrics.truth_recall([500.0], [(0.0, 100.0)], 10.0) == 0.0

    def test_fraction(self):
        recall = metrics.truth_recall(
            [50.0, 500.0], [(0.0, 100.0)], 10.0
        )
        assert recall == 0.5

    def test_no_events_is_vacuously_perfect(self):
        assert metrics.truth_recall([], [], 10.0) == 1.0


# ---------------------------------------------------------------------------
# Distributions
# ---------------------------------------------------------------------------


class TestDistributions:
    def test_jsd_identical(self):
        counts = {"a": 3, "b": 1}
        assert metrics.jensen_shannon_divergence(counts, counts) == 0.0

    def test_jsd_symmetric(self):
        p, q = {"a": 3, "b": 1}, {"a": 1, "c": 5}
        assert metrics.jensen_shannon_divergence(p, q) == pytest.approx(
            metrics.jensen_shannon_divergence(q, p)
        )

    def test_jsd_disjoint_is_maximal(self):
        assert metrics.jensen_shannon_divergence({"a": 1}, {"b": 1}) == pytest.approx(1.0)

    def test_jsd_empty_cases(self):
        assert metrics.jensen_shannon_divergence({}, {}) == 0.0
        assert metrics.jensen_shannon_divergence({}, {"a": 1}) == 1.0

    def test_jsd_scale_invariant(self):
        p = {"a": 1, "b": 3}
        scaled = {"a": 10, "b": 30}
        q = {"a": 2, "b": 1}
        assert metrics.jensen_shannon_divergence(p, q) == pytest.approx(
            metrics.jensen_shannon_divergence(scaled, q)
        )

    def test_distribution_score_complements_jsd(self):
        p, q = {"a": 1}, {"a": 1, "b": 1}
        assert metrics.distribution_score(p, q) == pytest.approx(
            1.0 - metrics.jensen_shannon_divergence(p, q)
        )

    def test_geo_cells_floor_to_degrees(self):
        cells = metrics.geo_cells(
            [(40.7, -74.0), (40.2, -74.9), (-33.9, 151.2)]
        )
        assert cells == {(40, -74): 1, (40, -75): 1, (-34, 151): 1}

    def test_sentiment_identical_mix(self):
        assert metrics.sentiment_score((10, 5, 85), (20, 10, 170)) == pytest.approx(1.0)

    def test_sentiment_opposite(self):
        assert metrics.sentiment_score((10, 0, 0), (0, 10, 0)) == 0.0

    def test_sentiment_empty_cases(self):
        assert metrics.sentiment_score((0, 0, 0), (0, 0, 0)) == 1.0
        assert metrics.sentiment_score((1, 0, 0), (0, 0, 0)) == 0.0
