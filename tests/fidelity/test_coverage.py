"""Unit tests for Wilson-interval coverage estimation."""

from __future__ import annotations

import pytest

from repro.fidelity.coverage import CoverageEstimate, wilson_interval


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(30, 100)
        assert low < 0.3 < high

    def test_bounds_stay_in_unit_interval(self):
        for successes, trials in [(0, 10), (10, 10), (1, 1), (0, 1)]:
            low, high = wilson_interval(successes, trials)
            assert 0.0 <= low <= high <= 1.0

    def test_zero_trials_is_vacuous(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_more_trials_tighter_interval(self):
        low_small, high_small = wilson_interval(10, 100)
        low_big, high_big = wilson_interval(1000, 10000)
        assert (high_big - low_big) < (high_small - low_small)

    def test_zero_successes_excludes_one(self):
        low, high = wilson_interval(0, 50)
        assert low == pytest.approx(0.0, abs=1e-12)
        assert high < 0.2

    def test_all_successes_excludes_zero(self):
        low, high = wilson_interval(50, 50)
        assert high == 1.0
        assert low > 0.8

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 3)
        with pytest.raises(ValueError):
            wilson_interval(-1, 3)


class TestCoverageEstimate:
    def test_point_estimate(self):
        estimate = CoverageEstimate.from_counts(observed=25, eligible=100)
        assert estimate.coverage == 0.25
        assert estimate.ci_low < 0.25 < estimate.ci_high

    def test_full_coverage(self):
        estimate = CoverageEstimate.from_counts(observed=100, eligible=100)
        assert estimate.coverage == 1.0
        assert estimate.ci_high == 1.0

    def test_zero_eligible(self):
        estimate = CoverageEstimate.from_counts(observed=0, eligible=0)
        assert estimate.coverage == 0.0
        assert estimate.confidence == 0.0  # vacuous interval, width 1

    def test_confidence_grows_with_sample_size(self):
        small = CoverageEstimate.from_counts(observed=1, eligible=10)
        big = CoverageEstimate.from_counts(observed=1000, eligible=10000)
        assert big.confidence > small.confidence
        assert 0.0 <= small.confidence <= 1.0

    def test_estimated_total_scales_up(self):
        estimate = CoverageEstimate.from_counts(observed=10, eligible=1000)
        assert estimate.estimated_total == pytest.approx(1000.0)

    def test_estimated_total_zero_coverage(self):
        estimate = CoverageEstimate.from_counts(observed=0, eligible=100)
        assert estimate.estimated_total == 0.0

    def test_as_dict_round_trip(self):
        estimate = CoverageEstimate.from_counts(observed=10, eligible=40)
        payload = estimate.as_dict()
        assert payload["observed"] == 10
        assert payload["eligible"] == 40
        assert payload["coverage"] == 0.25
        assert payload["confidence"] == estimate.confidence
        assert payload["estimated_total"] == pytest.approx(40.0)
