"""The three example queries from Section 2 of the paper, end to end.

These are the reproduction's E1 acceptance tests: each query must parse,
plan with the documented mechanism, and stream sensible results off the
simulated firehose.
"""

import pytest

from repro import TweeQL


@pytest.fixture(scope="module")
def news_session(news_week):
    return TweeQL.for_scenarios(news_week, seed=11)


QUERY_1 = (
    "SELECT sentiment(text), latitude(loc), longitude(loc) "
    "FROM twitter WHERE text contains 'obama';"
)

QUERY_2 = (
    "SELECT text FROM twitter WHERE text contains 'obama' "
    "AND location in [bounding box for NYC];"
)

QUERY_3 = (
    "SELECT AVG(sentiment(text)), floor(latitude(loc)) AS lat, "
    "floor(longitude(loc)) AS long FROM twitter "
    "WHERE text contains 'obama' GROUP BY lat, long WINDOW 3 hours;"
)


def test_query_1_sentiment_and_geocode(news_session):
    rows = news_session.query(QUERY_1).fetch(50)
    assert len(rows) == 50
    sentiments = {row["sentiment(text)"] for row in rows}
    assert sentiments <= {-1, 0, 1}
    assert len(sentiments) >= 2
    located = [row for row in rows if row["latitude(loc)"] is not None]
    assert located  # many locations geocode
    for row in located:
        assert -90 <= row["latitude(loc)"] <= 90
        assert -180 <= row["longitude(loc)"] <= 180


def test_query_2_keyword_and_bbox(news_session):
    handle = news_session.query(QUERY_2)
    rows = handle.all(limit=2000)
    # The planner sampled both candidate filters and picked one.
    assert handle.filter_choice is not None
    assert len(handle.filter_choice.estimates) == 2
    for row in rows:
        assert "obama" in row["text"].lower()
    # All rows came from geotagged NYC tweets (the local predicate).
    from repro.geo.bbox import named_box

    nyc = named_box("nyc")
    for row in rows:
        tweet = row["__tweet__"]
        assert nyc.contains_point(tweet.geo)


def test_query_2_chooses_rarer_filter(news_session):
    handle = news_session.query(QUERY_2)
    choice = handle.filter_choice
    chosen = next(e for e in choice.estimates if e.candidate is choice.chosen)
    others = [e for e in choice.estimates if e.candidate is not choice.chosen]
    assert all(chosen.selectivity <= other.selectivity for other in others)
    handle.close()


def test_query_3_regional_sentiment(news_session):
    rows = news_session.query(QUERY_3).all()
    assert rows
    for row in rows:
        assert row["window_end"] - row["window_start"] == 3 * 3600.0
        if row["lat"] is not None:
            assert row["lat"] == int(row["lat"])
        if row["avg(sentiment(text))"] is not None:
            assert -1.0 <= row["avg(sentiment(text))"] <= 1.0
    # The 1°×1° grouping yields several distinct regions.
    regions = {(row["lat"], row["long"]) for row in rows}
    assert len(regions) > 3


def test_query_3_regions_sized_by_population(news_session):
    """Window counts per region reflect the uneven user distribution."""
    rows = news_session.query(
        "SELECT COUNT(*) AS n, floor(latitude(loc)) AS lat, "
        "floor(longitude(loc)) AS long FROM twitter "
        "WHERE text contains 'obama' GROUP BY lat, long WINDOW 24 hours;"
    ).all()
    by_region: dict[tuple, int] = {}
    for row in rows:
        key = (row["lat"], row["long"])
        by_region[key] = by_region.get(key, 0) + row["n"]
    # NYC's cell (40, -75) must be among the heavy cells.
    named = by_region.get((40, -75), 0)
    assert named > 0
    assert named >= sorted(by_region.values())[len(by_region) // 2]
