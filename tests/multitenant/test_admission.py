"""Admission control: typed TQL4xx rejections and group lifecycle rules."""

from __future__ import annotations

import pytest

from repro.errors import AdmissionError, PlanError, UnknownSourceError

from tests.multitenant.conftest import QUERY_POOL


def test_capacity_rejection_is_tql401(shared_session):
    group = shared_session.shared(max_tenants=2)
    group.query(QUERY_POOL[0])
    group.query(QUERY_POOL[1])
    with pytest.raises(AdmissionError) as err:
        group.query(QUERY_POOL[2])
    assert err.value.code == "TQL401"
    assert "capacity" in str(err.value)
    assert group.stats.admitted == 2
    assert group.stats.rejected == 1
    group.close()


@pytest.mark.parametrize(
    "sql, needle",
    [
        (
            "SELECT text FROM twitter WHERE created_at < now();",
            "now()",
        ),
        (
            "SELECT text FROM twitter INTO STREAM shouts;",
            "INTO STREAM",
        ),
    ],
)
def test_unshareable_statements_are_tql402(shared_session, sql, needle):
    group = shared_session.shared()
    with pytest.raises(AdmissionError) as err:
        group.query(sql)
    assert err.value.code == "TQL402"
    assert needle in str(err.value)
    group.close()


def test_foreign_source_is_tql402(shared_session):
    shared_session.register_source("logs", lambda: iter(()), ("text",))
    group = shared_session.shared()
    with pytest.raises(AdmissionError) as err:
        group.query("SELECT text FROM logs;")
    assert err.value.code == "TQL402"
    assert "logs" in str(err.value)
    group.close()


def test_late_admission_is_tql403(shared_session):
    group = shared_session.shared()
    handle = group.query(QUERY_POOL[4])
    handle.all()
    with pytest.raises(AdmissionError) as err:
        group.query(QUERY_POOL[0])
    assert err.value.code == "TQL403"
    assert "already streaming" in str(err.value)
    group.close()


def test_closed_group_is_tql403(shared_session):
    group = shared_session.shared()
    group.close()
    with pytest.raises(AdmissionError) as err:
        group.query(QUERY_POOL[0])
    assert err.value.code == "TQL403"
    assert "closed" in str(err.value)


def test_every_rejection_counts(shared_session):
    """The rejected counter moves once per AdmissionError, whatever kind."""
    group = shared_session.shared(max_tenants=1)
    group.query(QUERY_POOL[0])
    for sql in (QUERY_POOL[1], QUERY_POOL[2]):
        with pytest.raises(AdmissionError):
            group.query(sql)
    assert group.stats.rejected == 2
    group.close()


def test_analyzer_errors_keep_their_diagnostics(shared_session):
    """Non-admission validation still raises the analyzer's typed error,
    not an AdmissionError, and admits nothing."""
    group = shared_session.shared()
    with pytest.raises(PlanError) as err:
        group.query("SELECT bogus_column FROM twitter;")
    assert not isinstance(err.value, AdmissionError)
    assert group.stats.admitted == 0
    group.close()


def test_group_parameter_validation(shared_session):
    with pytest.raises(ValueError):
        shared_session.shared(max_tenants=0)
    with pytest.raises(ValueError):
        shared_session.shared(buffer_batches=0)
    with pytest.raises(UnknownSourceError):
        shared_session.shared(source="nope")


def test_admission_error_is_a_plan_error():
    """Callers catching PlanError keep working when groups reject."""
    assert issubclass(AdmissionError, PlanError)


def test_empty_group_refuses_to_start(shared_session):
    from repro.errors import ExecutionError

    group = shared_session.shared()
    with pytest.raises(ExecutionError):
        group.start()
    group.close()
