"""Fanout chaos: slow tenants, dead tenants, eviction, and reconnects.

The backpressure contract under test: a misbehaving tenant may cost its
siblings at most ``stall_seconds`` of wall time, its input buffer never
grows past ``buffer_batches``, and whatever happens to it — eviction,
detach, early LIMIT exit — every *other* tenant's rows stay identical to
an independent run.

These tests use real ``time.sleep`` inside UDFs to make tenant pipelines
genuinely slow (the backpressure budget is wall time, not virtual time),
so the sleeps are kept in the sub-millisecond range.
"""

from __future__ import annotations

import time

import pytest

from repro import EngineConfig, TweeQL
from repro.engine.resilience import FaultPlan, StreamDrop
from repro.errors import ExecutionError
from repro.twitter.workloads import background_chatter

from tests.multitenant.conftest import SEED, clean, run_independent

pytestmark = pytest.mark.chaos


@pytest.fixture(scope="module")
def tiny_chatter(population):
    """~250 tweets: small enough that sleepy UDF pipelines stay fast."""
    return background_chatter(
        seed=SEED, population=population, duration=120.0, rate=2.0
    )


def _session(scenario, config=None, udfs=()):
    session = TweeQL.for_scenarios(
        scenario, config=config, delivery_ratio=1.0, seed=SEED
    )
    for name, impl in udfs:
        session.register_udf(name, impl)
    return session


def test_slow_tenant_does_not_stall_siblings(tiny_chatter):
    """A tenant 1000x slower than the stream: its sibling still gets every
    row, the slow tenant's buffer stays bounded, and nobody is evicted
    (the fanout waits within the stall budget, it does not kill laggards)."""

    def snail(_ctx, text):
        time.sleep(0.0004)
        return text

    config = EngineConfig(batch_size=16)
    session = _session(tiny_chatter, config=config, udfs=[("snail", snail)])
    group = session.shared(buffer_batches=2, stall_seconds=30.0)
    slow = group.query("SELECT snail(text) AS t FROM twitter;")
    fast = group.query("SELECT text FROM twitter;")
    try:
        fast_rows = clean(fast.all())
        slow_rows = clean(slow.all())
    finally:
        group.close()

    assert fast_rows == run_independent(
        tiny_chatter, "SELECT text FROM twitter;", config=config
    )
    slow_session = _session(tiny_chatter, config=config, udfs=[("snail", snail)])
    expected_slow = clean(
        slow_session.query("SELECT snail(text) AS t FROM twitter;").all()
    )
    assert slow_rows == expected_slow

    tree = group.stats_dict()
    assert group.stats.evicted == 0
    assert group.stats.detached == 0
    for tenant in tree["tenant"].values():
        assert tenant["buffer_highwater"] <= 2


def test_dead_tenant_is_evicted_and_siblings_complete(tiny_chatter):
    """A pipeline that stops draining blows the stall budget: the tenant
    is evicted (its handle raises), the healthy sibling's rows are
    untouched, and the eviction shows up in stats and metrics."""

    def wedge(_ctx, text):
        time.sleep(0.25)
        return text

    config = EngineConfig(batch_size=1)
    session = _session(tiny_chatter, config=config, udfs=[("wedge", wedge)])
    group = session.shared(buffer_batches=1, stall_seconds=0.15)
    dead = group.query("SELECT wedge(text) AS t FROM twitter;")
    healthy = group.query("SELECT text FROM twitter;")
    try:
        healthy_rows = clean(healthy.all())
        with pytest.raises(ExecutionError, match="evicted"):
            dead.all()
    finally:
        group.close()

    assert healthy_rows == run_independent(
        tiny_chatter, "SELECT text FROM twitter;", config=config
    )
    assert group.stats.evicted == 1
    tree = group.stats_dict()
    assert tree["tenant"]["0"]["evicted"] is True
    assert tree["tenant"]["0"]["buffer_highwater"] <= 1
    assert tree["tenant"]["1"]["evicted"] is False
    snapshot = group.metrics().snapshot()
    assert snapshot["shared"]["group"]["evicted"] == 1
    assert snapshot["shared"]["tenant"]["0"]["evicted"] == 1


def test_early_limits_stop_the_shared_scan(tiny_chatter):
    """When every tenant finishes (LIMIT), the fanout stops pulling: the
    connection's scanned count stays well short of the full firehose."""
    config = EngineConfig(batch_size=1)
    session = _session(tiny_chatter, config=config)
    group = session.shared(buffer_batches=1)
    h1 = group.query("SELECT text FROM twitter LIMIT 5;")
    h2 = group.query("SELECT screen_name FROM twitter LIMIT 5;")
    try:
        rows1 = clean(h1.all())
        rows2 = clean(h2.all())
    finally:
        group.close()
    assert rows1 == run_independent(
        tiny_chatter, "SELECT text FROM twitter LIMIT 5;", config=config
    )
    assert len(rows2) == 5
    tree = group.stats_dict()
    assert tree["connection"]["scanned"] < len(tiny_chatter)
    # Natural completion is not a detach.
    assert group.stats.detached == 0


def test_closed_handle_detaches_without_touching_siblings(tiny_chatter):
    """Closing a handle before pulling = a dead consumer: its feed is
    dropped (detached), the sibling drains the whole stream unchanged."""
    session = _session(tiny_chatter)
    group = session.shared()
    abandoned = group.query("SELECT text FROM twitter;")
    survivor = group.query("SELECT screen_name, followers FROM twitter;")
    abandoned.close()
    try:
        rows = clean(survivor.all())
    finally:
        group.close()
    assert rows == run_independent(
        tiny_chatter, "SELECT screen_name, followers FROM twitter;"
    )
    assert group.stats.detached == 1
    tree = group.stats_dict()
    assert tree["tenant"]["0"]["detached"] is True
    assert tree["tenant"]["1"]["detached"] is False
    # Closing the group again is a no-op; closing the survivor's handle
    # after completion does not count as a detach either.
    survivor.close()
    group.close()
    assert group.stats.detached == 1


def test_stream_drops_reconnect_and_rows_still_match(tiny_chatter):
    """A mid-stream disconnect with auto-reconnect: the shared connection
    reconnects and the surviving rows equal an independent run under the
    same fault plan (unfiltered queries, so both sides ride an identical
    firehose connection)."""
    plan = FaultPlan(
        seed=7, stream_drops=(StreamDrop(after_delivered=60, gap=10),)
    )
    config = EngineConfig(fault_plan=plan)
    sqls = [
        "SELECT text FROM twitter;",
        "SELECT length(text) AS n FROM twitter;",
    ]
    session = _session(tiny_chatter, config=config)
    group = session.shared()
    handles = [group.query(sql) for sql in sqls]
    try:
        shared_rows = [clean(h.all()) for h in handles]
    finally:
        group.close()
    for sql, rows in zip(sqls, shared_rows):
        assert rows == run_independent(tiny_chatter, sql, config=config), sql
    tree = group.stats_dict()
    assert tree["connection"]["reconnects"] >= 1
    assert tree["connection"]["gap_tweets"] >= 0
