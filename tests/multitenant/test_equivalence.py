"""Tenant equivalence: shared execution == N independent queries.

The contract the whole multitenant layer stands on: admitting a query to
a :class:`SharedScanGroup` must not change a single output row relative
to running it alone on its own session (lossless delivery pinned by the
conftest helpers). Hypothesis samples random tenant sets from the query
pool; a deterministic sweep crosses batch size, worker count, and tracing,
and checks the observability contract (EXPLAIN, trace reconciliation)
along the way.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import EngineConfig
from repro.obs import reconcile

from tests.multitenant.conftest import (
    QUERY_POOL,
    run_independent,
    run_shared,
)


@given(
    picks=st.lists(
        st.sampled_from(range(len(QUERY_POOL))),
        min_size=2,
        max_size=8,
        unique=True,
    )
)
@settings(max_examples=8, deadline=None)
def test_random_tenant_sets_match_independent_runs(mini_soccer, picks):
    """Any 2–8 queries from the pool: shared rows == independent rows."""
    sqls = [QUERY_POOL[i] for i in picks]
    shared, group = run_shared(mini_soccer, sqls)
    for sql, rows in zip(sqls, shared):
        assert rows == run_independent(mini_soccer, sql), sql
    assert group.stats.admitted == len(sqls)
    assert group.stats.evicted == 0
    assert group.stats.detached == 0


#: A fixed set exercising every pipeline shape at once: shared filter
#: prefix (two tenants on ``contains 'goal'``), UDF projection, early
#: LIMIT exit, and windowed aggregation.
SWEEP_SQLS = [
    QUERY_POOL[1],
    QUERY_POOL[2],
    QUERY_POOL[4],
    QUERY_POOL[5],
]


@pytest.mark.parametrize("workers", [1, 4])
@pytest.mark.parametrize("batch_size", [1, 256])
@pytest.mark.parametrize("tracing", [False, True])
def test_equivalence_sweep(mini_soccer, workers, batch_size, tracing):
    """Equivalence must survive every engine configuration.

    batch_size=1 is the legacy row-at-a-time framing; workers>1 shards
    the *independent* baselines (the shared group itself stays serial and
    says so in EXPLAIN); tracing wraps every operator in span probes.
    """
    config = EngineConfig(
        workers=workers, batch_size=batch_size, tracing=tracing
    )
    shared, group = run_shared(mini_soccer, SWEEP_SQLS, config=config)
    for i, sql in enumerate(SWEEP_SQLS):
        assert shared[i] == run_independent(mini_soccer, sql, config=config), (
            f"workers={workers} batch={batch_size} tracing={tracing}: {sql}"
        )
    # Two tenants share the `text contains 'goal'` conjunct, so the
    # per-row memo must have saved evaluations.
    assert group.stats.evaluations_shared > 0
    tree = group.stats_dict()
    assert tree["connection"]["delivered"] == tree["connection"]["scanned"]
    for handle in group.handles:
        if tracing:
            report = reconcile(handle)
            assert report["ok"], report
            analyze = handle.explain(analyze=True)
            assert "SharedScan" in analyze
        else:
            assert "SharedScan" in handle.explain()


def test_group_explain_describes_fanout(mini_soccer):
    _rows, group = run_shared(mini_soccer, SWEEP_SQLS)
    text = group.explain()
    assert "SharedScan group" in text
    assert "conjunct" in text
    handle = group.handles[0]
    assert "evaluated fanout-side, memoized across tenants" in handle.explain()


def test_workers_are_ignored_but_rows_identical(mini_soccer):
    """A sharded config admits fine; the plan notes workers are ignored."""
    config = EngineConfig(workers=4)
    shared, group = run_shared(mini_soccer, [QUERY_POOL[1]], config=config)
    assert shared[0] == run_independent(mini_soccer, QUERY_POOL[1], config=config)
    assert "workers ignored" in group.handles[0].explain()


def test_tenant_stats_count_routed_rows(mini_soccer):
    """A tenant's rows_scanned is its routed substream, and the group's
    rows_routed is the sum over tenants."""
    shared, group = run_shared(
        mini_soccer, [QUERY_POOL[0], QUERY_POOL[1]]
    )
    tree = group.stats_dict()
    routed = [
        tree["tenant"]["0"]["rows_routed"],
        tree["tenant"]["1"]["rows_routed"],
    ]
    # The unfiltered tenant sees every delivered row; the filtered one a
    # strict subset.
    assert routed[0] == tree["connection"]["delivered"]
    assert 0 < routed[1] < routed[0]
    assert tree["group"]["rows_routed"] == sum(routed)
    assert routed[0] == group.handles[0].stats.rows_scanned
    assert len(shared[0]) == routed[0]
