"""Fixtures and helpers for the multi-tenant shared-scan suite.

The suite's backbone is the tenant-equivalence harness: run a set of
queries once as tenants of one :class:`SharedScanGroup` and once each on
its own session, and require row-for-row identical output. Equivalence
holds only under lossless delivery (``delivery_ratio=1.0``) — the
per-connection delivery-loss RNG draws differently for a shared firehose
connection than for N per-query filtered connections, exactly as two real
connections would drop different tweets — so every run here pins it.
"""

from __future__ import annotations

import pytest

from repro import EngineConfig, TweeQL
from repro.twitter.workloads import soccer_match_scenario

SEED = 11

#: Shareable statements the equivalence tests sample from: plain filters,
#: shared filter prefixes, UDF projections, regex matching, LIMIT early
#: exit, and windowed/grouped aggregation.
QUERY_POOL = [
    "SELECT text FROM twitter;",
    "SELECT text FROM twitter WHERE text contains 'goal';",
    "SELECT lower(text) AS t, length(text) AS n FROM twitter "
    "WHERE text contains 'goal';",
    "SELECT sentiment(text) AS s, text FROM twitter WHERE text contains 'ref';",
    "SELECT text FROM twitter WHERE text contains 'goal' LIMIT 25;",
    "SELECT COUNT(*) AS n FROM twitter WHERE text contains 'goal' "
    "WINDOW 5 minutes;",
    "SELECT AVG(followers) AS f, lang FROM twitter GROUP BY lang "
    "WINDOW 10 minutes;",
    "SELECT text FROM twitter WHERE text matches 'g[oa]+l';",
    "SELECT screen_name, followers FROM twitter "
    "WHERE followers >= 0 AND length(text) > 10 AND lang = 'en';",
    "SELECT text FROM twitter WHERE text contains 'goal' AND length(text) > 20;",
]


@pytest.fixture(scope="session")
def mini_soccer(population):
    """A small soccer match (~2k tweets) — shared-scan runs stay quick."""
    return soccer_match_scenario(
        seed=SEED, population=population, intensity=0.15
    )


def clean(rows):
    """Strip engine-internal ``__``-prefixed passthrough columns."""
    return [
        {k: v for k, v in row.items() if not k.startswith("__")}
        for row in rows
    ]


def run_independent(scenario, sql, config=None):
    """One query on its own fresh session: the equivalence baseline."""
    session = TweeQL.for_scenarios(
        scenario, config=config, delivery_ratio=1.0, seed=SEED
    )
    handle = session.query(sql)
    try:
        return clean(handle.all())
    finally:
        handle.close()


def run_shared(scenario, sqls, config=None, **group_kwargs):
    """All queries as tenants of one group; returns (rows per query, group)."""
    session = TweeQL.for_scenarios(
        scenario, config=config, delivery_ratio=1.0, seed=SEED
    )
    group = session.shared(**group_kwargs)
    try:
        handles = [group.query(sql) for sql in sqls]
        rows = [clean(handle.all()) for handle in handles]
    finally:
        group.close()
    return rows, group


@pytest.fixture()
def shared_session(mini_soccer):
    """A fresh lossless session over the small match."""
    return TweeQL.for_scenarios(mini_soccer, delivery_ratio=1.0, seed=SEED)


__all__ = [
    "EngineConfig",
    "QUERY_POOL",
    "SEED",
    "clean",
    "run_independent",
    "run_shared",
]
