"""Cross-tenant service-cache sharing: attribution and reconciliation.

Tenants on one session share the ManagedCall LRUs by construction; the
group's :class:`SharedServiceCache` attributes that sharing — who first
requested each key, and how many hits crossed tenant boundaries. These
tests pin the attribution invariants and, critically, that the stats
mirrors *reconcile*: per-tenant mirrors + the fanout mirror sum exactly
to the session's global ManagedCall counters, and the metrics registry
reports the same numbers.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import TweeQL

from tests.multitenant.conftest import SEED, clean, run_independent

GEO_SQL = "SELECT latitude(loc) AS la FROM twitter WHERE text contains 'goal';"
GEO_SQLS = [
    GEO_SQL,
    "SELECT latitude(loc) AS la, longitude(loc) AS lo FROM twitter "
    "WHERE text contains 'goal';",
    "SELECT longitude(loc) AS lo, text FROM twitter WHERE text contains 'goal';",
    "SELECT latitude(loc) AS la, screen_name FROM twitter "
    "WHERE text contains 'goal';",
]


def _fresh(mini_soccer):
    return TweeQL.for_scenarios(mini_soccer, delivery_ratio=1.0, seed=SEED)


@given(tenants=st.integers(min_value=2, max_value=4))
@settings(max_examples=4, deadline=None)
def test_cross_tenant_geocode_hits(mini_soccer, tenants):
    """N tenants geocoding the same substream: every key is owned by one
    tenant, so the others' lookups must show up as cross-tenant hits —
    and the attribution counters stay internally consistent."""
    session = _fresh(mini_soccer)
    group = session.shared()
    handles = [group.query(GEO_SQLS[i]) for i in range(tenants)]
    try:
        rows = [clean(h.all()) for h in handles]
    finally:
        group.close()
    for i in range(tenants):
        assert rows[i] == run_independent(mini_soccer, GEO_SQLS[i])

    stats = group.shared_cache.service_stats("geocoder")
    assert stats.requests > 0
    assert 0 < stats.hits <= stats.requests
    assert 0 < stats.cross_tenant_hits <= stats.hits
    assert 0.0 < stats.cross_tenant_hit_rate <= stats.hit_rate <= 1.0
    as_dict = group.shared_cache.as_dict()["geocoder"]
    assert as_dict["cross_tenant_hits"] == stats.cross_tenant_hits


def test_tenant_mirrors_reconcile_with_session_globals(mini_soccer):
    """sum(per-tenant mirror) + fanout mirror == the session ManagedCall's
    own counters — no call is double-counted or lost, even when a WHERE
    conjunct sends service traffic through the fanout context."""
    session = _fresh(mini_soccer)
    group = session.shared()
    # Tenant-side geocoding plus a fanout-side conjunct that geocodes.
    h1 = group.query(GEO_SQL)
    h2 = group.query(
        "SELECT text FROM twitter "
        "WHERE text contains 'goal' AND latitude(loc) > -90.0;"
    )
    try:
        rows1 = clean(h1.all())
        rows2 = clean(h2.all())
    finally:
        group.close()
    assert rows1 == run_independent(mini_soccer, GEO_SQL)
    assert rows2  # the conjunct keeps geocodable rows

    tenant_calls = 0
    tenant_hits = 0
    for handle in group.handles:
        mirror = handle.service_stats.get("geocode")
        if mirror is not None:
            tenant_calls += mirror["calls"]
            tenant_hits += mirror["cache_hits"]
    fanout = group.fanout_service_stats["geocoder"]
    globals_ = session.geocode_managed.stats
    assert tenant_calls + fanout.calls == globals_.calls
    assert tenant_hits + fanout.cache_hits == globals_.cache_hits
    assert fanout.calls > 0  # the conjunct really ran fanout-side


def test_shared_cache_stats_match_metrics_registry(mini_soccer):
    """The regression from the satellite list: per-tenant service_stats
    and the group's cache tree agree with the metrics registry view."""
    session = _fresh(mini_soccer)
    group = session.shared()
    handles = [group.query(GEO_SQLS[0]), group.query(GEO_SQLS[1])]
    try:
        for handle in handles:
            handle.all()
    finally:
        group.close()

    tree = group.stats_dict()
    snapshot = group.metrics().snapshot()["shared"]
    assert snapshot["cache"]["geocoder"]["requests"] == (
        tree["cache"]["geocoder"]["requests"]
    )
    assert snapshot["cache"]["geocoder"]["cross_tenant_hits"] == (
        group.shared_cache.service_stats("geocoder").cross_tenant_hits
    )
    assert snapshot["group"]["rows_routed"] == group.stats.rows_routed
    # The shared-cache request count is the sum of what the tenants saw.
    tenant_requests = sum(
        handle.service_stats["geocode"]["calls"] for handle in group.handles
    )
    assert tree["cache"]["geocoder"]["requests"] == tenant_requests
