"""Synthetic user population."""

import random

import pytest

from repro import rng as rng_mod
from repro.twitter.users import UserPopulation


@pytest.fixture(scope="module")
def population():
    return UserPopulation(size=800, seed=3)


def test_size(population):
    assert len(population) == 800
    assert len(population.users) == 800


def test_deterministic_for_seed():
    a = UserPopulation(size=50, seed=9)
    b = UserPopulation(size=50, seed=9)
    assert [u.location for u in a.users] == [u.location for u in b.users]


def test_different_seeds_differ():
    a = UserPopulation(size=50, seed=9)
    b = UserPopulation(size=50, seed=10)
    assert [u.location for u in a.users] != [u.location for u in b.users]


def test_rejects_empty():
    with pytest.raises(ValueError):
        UserPopulation(size=0)


def test_every_user_has_home(population):
    for user in population.users:
        assert user.home is not None
        city = population.home_city(user)
        assert city.coordinates == user.home


def test_some_locations_ungeocodable(population):
    from repro.geo.geocode import Geocoder

    geocoder = Geocoder()
    unresolved = sum(
        1 for u in population.users if geocoder.try_geocode(u.location) is None
    )
    assert 0.10 * len(population) < unresolved < 0.40 * len(population)


def test_geo_enabled_fraction(population):
    enabled = sum(1 for u in population.users if u.geo_enabled)
    assert 0.08 * len(population) < enabled < 0.30 * len(population)


def test_activity_is_skewed(population):
    """Zipf activity: a small head of users authors a large tweet share."""
    rng = rng_mod.derive(1, "test")
    counts: dict[int, int] = {}
    for _ in range(4000):
        author = population.sample_author(rng)
        counts[author.user_id] = counts.get(author.user_id, 0) + 1
    top = sorted(counts.values(), reverse=True)[:40]
    assert sum(top) > 0.2 * 4000


def test_sample_author_near_respects_radius(population):
    rng = random.Random(5)
    tokyo = population.gazetteer.lookup("Tokyo")
    for _ in range(20):
        author = population.sample_author_near(rng, tokyo.lat, tokyo.lon, 5.0)
        home = population.home_city(author)
        # Falls back globally only if nobody is near Tokyo — with this
        # population there always is someone.
        assert abs(home.lat - tokyo.lat) <= 5.0
        assert abs(home.lon - tokyo.lon) <= 5.0


def test_geotag_only_for_enabled(population):
    rng = random.Random(5)
    for user in population.users[:100]:
        tag = population.geotag_for(rng, user)
        if not user.geo_enabled:
            assert tag is None
        else:
            assert tag is not None
            assert abs(tag[0] - user.home[0]) <= 0.15 + 1e-9
            assert abs(tag[1] - user.home[1]) <= 0.15 + 1e-9


def test_tokyo_outnumbers_cape_town():
    """The paper's uneven-groups premise holds in the population."""
    population = UserPopulation(size=4000, seed=2)
    homes = [population.home_city(u).name for u in population.users]
    assert homes.count("Tokyo") > 5 * homes.count("Cape Town")
