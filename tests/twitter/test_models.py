"""Tweet/user records and schema projection."""

from repro.twitter.models import TWITTER_SCHEMA, Tweet, TweetEntities, User


def make_tweet(text="hello world", geo=None, location="Boston"):
    user = User(user_id=1, screen_name="alice", location=location)
    return Tweet(tweet_id=10, created_at=1000.0, user=user, text=text, geo=geo)


def test_entities_extracted_automatically():
    tweet = make_tweet("GOAL #mcfc @ref http://bit.ly/xyz!")
    assert tweet.entities.hashtags == ("mcfc",)
    assert tweet.entities.mentions == ("ref",)
    assert tweet.entities.urls == ("http://bit.ly/xyz",)


def test_entities_url_trailing_punctuation_stripped():
    entities = TweetEntities.from_text("see http://t.co/abc, now")
    assert entities.urls == ("http://t.co/abc",)


def test_entities_multiple_hashtags_lowercased():
    entities = TweetEntities.from_text("#EPL and #MCFC")
    assert entities.hashtags == ("epl", "mcfc")


def test_contains_case_insensitive():
    tweet = make_tweet("Watching OBAMA speak")
    assert tweet.contains("obama")
    assert tweet.contains("Obama")
    assert not tweet.contains("soccer")


def test_matches_any_keyword():
    tweet = make_tweet("premierleague is on")
    assert tweet.matches_any_keyword(("soccer", "premierleague"))
    assert not tweet.matches_any_keyword(("obama",))


def test_to_row_covers_schema():
    tweet = make_tweet(geo=(40.0, -74.0))
    row = tweet.to_row()
    for column in TWITTER_SCHEMA:
        assert column in row
    assert row["geo_lat"] == 40.0
    assert row["location"] == (40.0, -74.0)
    assert row["__tweet__"] is tweet


def test_to_row_without_geotag():
    row = make_tweet().to_row()
    assert row["geo_lat"] is None
    assert row["location"] is None


def test_location_property_is_profile_location():
    assert make_tweet(location="NYC").location == "NYC"


def test_ground_truth_defaults_empty():
    assert make_tweet().ground_truth == {}
