"""Retweet generation."""

import re

import pytest

from repro.twitter.users import UserPopulation
from repro.twitter.workloads import RETWEET_RATE, soccer_match_scenario


@pytest.fixture(scope="module")
def scenario():
    population = UserPopulation(size=600, seed=13)
    return soccer_match_scenario(seed=13, population=population, intensity=0.3)


def retweets_of(scenario):
    return [t for t in scenario.tweets if "retweet_of" in t.ground_truth]


def test_retweet_rate_roughly_matches(scenario):
    topical = [
        t for t in scenario.tweets if t.ground_truth["topic"] != "chatter"
    ]
    rts = retweets_of(scenario)
    rate = len(rts) / len(topical)
    assert 0.5 * RETWEET_RATE < rate < 1.6 * RETWEET_RATE


def test_retweet_text_quotes_original(scenario):
    by_id = {t.tweet_id: t for t in scenario.tweets}
    for rt in retweets_of(scenario)[:100]:
        original = by_id[rt.ground_truth["retweet_of"]]
        assert rt.text.startswith(f"RT @{original.screen_name}:")
        assert original.text[:60] in rt.text or rt.text.endswith("…")
        assert len(rt.text) <= 140


def test_retweet_inherits_sentiment_and_topic(scenario):
    by_id = {t.tweet_id: t for t in scenario.tweets}
    for rt in retweets_of(scenario)[:100]:
        original = by_id[rt.ground_truth["retweet_of"]]
        assert rt.ground_truth["sentiment"] == original.ground_truth["sentiment"]
        assert rt.ground_truth["topic"] == original.ground_truth["topic"]


def test_retweet_coords_are_the_retweeters(scenario):
    by_id = {t.tweet_id: t for t in scenario.tweets}
    differs = 0
    for rt in retweets_of(scenario)[:200]:
        original = by_id[rt.ground_truth["retweet_of"]]
        if rt.ground_truth["coords"] != original.ground_truth["coords"]:
            differs += 1
    assert differs > 0  # retweeters live elsewhere


def test_chatter_never_retweeted(scenario):
    for rt in retweets_of(scenario):
        assert rt.ground_truth["topic"] != "chatter"


def test_no_retweets_of_retweets(scenario):
    by_id = {t.tweet_id: t for t in scenario.tweets}
    for rt in retweets_of(scenario):
        original = by_id[rt.ground_truth["retweet_of"]]
        assert "retweet_of" not in original.ground_truth


def test_mentions_extracted_from_retweets(scenario):
    rt = retweets_of(scenario)[0]
    handle = re.match(r"RT @(\w+):", rt.text).group(1)
    assert handle in rt.entities.mentions
