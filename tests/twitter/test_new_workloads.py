"""The three high-stress fidelity scenarios: structure and ground truth."""

from __future__ import annotations

import pytest

from repro.twitter.users import UserPopulation
from repro.twitter.workloads import (
    bot_flood_scenario,
    breaking_news_cascade_scenario,
    election_night_scenario,
)

SEED = 42


@pytest.fixture(scope="module")
def population():
    return UserPopulation(size=400, seed=SEED)


@pytest.fixture(scope="module")
def election(population):
    return election_night_scenario(seed=SEED, population=population, intensity=0.3)


@pytest.fixture(scope="module")
def cascade(population):
    return breaking_news_cascade_scenario(
        seed=SEED, population=population, intensity=0.3
    )


@pytest.fixture(scope="module")
def botflood(population):
    return bot_flood_scenario(seed=SEED, population=population, intensity=0.3)


# ---------------------------------------------------------------------------
# Common contract
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", ["election", "cascade", "botflood"])
def test_scenario_contract(request, name):
    scenario = request.getfixturevalue(name)
    assert scenario.name == name
    assert scenario.keywords
    assert scenario.tweets
    assert scenario.truth.events
    # Sorted by time, sequential ids, everything inside the window.
    times = [tweet.created_at for tweet in scenario.tweets]
    assert times == sorted(times)
    assert all(scenario.start <= t < scenario.end + 1e-9 for t in times)
    ids = [tweet.tweet_id for tweet in scenario.tweets]
    assert len(set(ids)) == len(ids)
    for event in scenario.truth.events:
        assert scenario.start <= event.time <= scenario.end
        assert event.start <= event.time <= event.end


@pytest.mark.parametrize("name", ["election", "cascade", "botflood"])
def test_generators_are_deterministic(request, name, population):
    scenario = request.getfixturevalue(name)
    builder = {
        "election": election_night_scenario,
        "cascade": breaking_news_cascade_scenario,
        "botflood": bot_flood_scenario,
    }[name]
    again = builder(seed=SEED, population=population, intensity=0.3)
    assert [t.text for t in again.tweets] == [t.text for t in scenario.tweets]
    assert [t.created_at for t in again.tweets] == [
        t.created_at for t in scenario.tweets
    ]
    assert again.truth == scenario.truth


@pytest.mark.parametrize("name", ["election", "cascade", "botflood"])
def test_event_traffic_rises_above_baseline(request, name):
    """Each ground-truth event visibly lifts the keyword-matching rate."""
    scenario = request.getfixturevalue(name)
    matching = [
        t.created_at
        for t in scenario.tweets
        if t.matches_any_keyword(scenario.keywords)
    ]

    def rate(start, end):
        span = max(1.0, end - start)
        return sum(1 for t in matching if start <= t < end) / span

    for event in scenario.truth.events:
        event_rate = rate(event.start, min(event.end, event.start + 300.0))
        before = rate(event.start - 900.0, event.start - 300.0)
        assert event_rate > 2.0 * max(before, 0.01), (name, event.event_id)


# ---------------------------------------------------------------------------
# Scenario-specific shapes
# ---------------------------------------------------------------------------


class TestElection:
    def test_five_events_four_calls_one_projection(self, election):
        events = election.truth.events
        assert len(events) == 5
        assert [e.info.get("projection", False) for e in events] == [
            False, False, False, False, True,
        ]
        assert events[-1].info["winner"] == "harmon"

    def test_baseline_rises_through_the_night(self, election):
        """The anticipation ramp: later quiet hours out-tweet earlier ones."""
        quiet_windows = []  # windows away from any event burst
        for offset_hours in (1.0, 4.75):
            window_start = election.start + offset_hours * 3600.0
            quiet_windows.append(
                sum(
                    1
                    for t in election.tweets
                    if window_start <= t.created_at < window_start + 600.0
                )
            )
        early, late = quiet_windows
        assert late > 1.5 * early

    def test_state_calls_mention_their_state(self, election):
        first_call = election.truth.events[0]
        window = [
            t.text.lower()
            for t in election.tweets
            if first_call.start <= t.created_at < first_call.end
        ]
        mentioning = sum(1 for text in window if "ohio" in text)
        assert mentioning > 10


class TestCascade:
    def test_four_accelerating_waves(self, cascade):
        events = cascade.truth.events
        assert len(events) == 4
        gaps = [
            later.time - earlier.time
            for earlier, later in zip(events, events[1:])
        ]
        assert gaps == sorted(gaps, reverse=True)  # waves come faster

    def test_no_topical_traffic_before_the_break(self, cascade):
        break_time = cascade.truth.events[0].time
        before = [
            t
            for t in cascade.tweets
            if t.created_at < break_time - 60.0
            and t.matches_any_keyword(cascade.keywords)
        ]
        assert before == []

    def test_retweet_share_is_amplified(self, cascade, election):
        def rt_share(scenario):
            texts = [t.text for t in scenario.tweets]
            return sum(1 for text in texts if text.startswith("RT @")) / len(texts)

        assert rt_share(cascade) > 1.5 * rt_share(election)

    def test_first_wave_is_localized(self, cascade):
        """Wave 1's authors are drawn near the fire (±8°); later waves are
        global — so the first wave's geotag mix leans Pacific-Northwest."""

        def region_share(event):
            geos = [
                t.geo
                for t in cascade.tweets
                if event.start <= t.created_at < event.end and t.geo is not None
            ]
            assert geos
            near = sum(
                1
                for lat, lon in geos
                if abs(lat - 44.05) <= 8.0 and abs(lon + 121.3) <= 8.0
            )
            return near / len(geos)

        wave1, wave4 = cascade.truth.events[0], cascade.truth.events[3]
        assert region_share(wave1) > 2.0 * region_share(wave4)


class TestBotFlood:
    def test_launch_plus_two_floods(self, botflood):
        events = botflood.truth.events
        assert [e.info["bot"] for e in events] == [False, True, True]

    def test_floods_are_square_plateaus(self, botflood):
        """Flood traffic fills its window at a flat rate, then stops dead."""
        flood = botflood.truth.events[1]
        spam = [
            t.created_at
            for t in botflood.tweets
            if "giveaway" in t.text.lower() or "free" in t.text.lower()
        ]
        inside = sum(1 for t in spam if flood.start <= t < flood.end)
        duration = flood.info["duration"]
        just_after = sum(
            1 for t in spam if flood.end + 60 <= t < flood.end + 60 + duration
        )
        assert inside > 50
        assert just_after < inside * 0.05

    def test_spam_is_near_duplicate_and_neutral(self, botflood):
        flood = botflood.truth.events[1]
        spam_texts = [
            t.text
            for t in botflood.tweets
            if flood.start <= t.created_at < flood.end
            and "giveaway" in t.text.lower()
        ]
        assert len(spam_texts) > 50
        # A handful of templates produce heavy near-duplication.
        normalized = {text.split("http", 1)[0] for text in spam_texts}
        assert len(normalized) < len(spam_texts) * 0.2
        assert all("http" in text for text in spam_texts)
