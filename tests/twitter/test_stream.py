"""The firehose and streaming API façade."""

import pytest

from repro.clock import VirtualClock
from repro.errors import StreamError
from repro.geo.bbox import named_box
from repro.twitter.stream import Firehose, StreamingAPI


@pytest.fixture(scope="module")
def firehose(soccer, chatter):
    return Firehose.from_scenarios(soccer, chatter)


@pytest.fixture()
def api(firehose):
    return StreamingAPI(firehose, delivery_ratio=1.0)


def test_merge_orders_and_reids(firehose):
    times = [t.created_at for t in firehose]
    assert times == sorted(times)
    ids = [t.tweet_id for t in firehose]
    assert ids == list(range(1, len(firehose) + 1))


def test_span(firehose):
    first, last = firehose.span
    assert first < last


def test_track_filter_matches_keyword(api):
    connection = api.filter(track=("tevez",))
    tweets = list(connection)
    assert tweets
    assert all("tevez" in t.text.lower() for t in tweets)
    assert connection.stats.matched == connection.stats.delivered


def test_track_is_or_semantics(api):
    both = list(api.filter(track=("tevez", "silva")))
    only_tevez = list(api.filter(track=("tevez",)))
    assert len(both) > len(only_tevez)


def test_locations_filter_requires_geotag(api):
    nyc = named_box("nyc")
    tweets = list(api.filter(locations=(nyc,)))
    assert tweets
    for tweet in tweets:
        assert tweet.geo is not None
        assert nyc.contains_point(tweet.geo)


def test_follow_filter(api, firehose):
    target = firehose.tweets[0].user.user_id
    tweets = list(api.filter(follow=(target,)))
    assert tweets
    assert all(t.user.user_id == target for t in tweets)


def test_exactly_one_filter_type(api):
    with pytest.raises(StreamError):
        api.filter(track=("a",), locations=(named_box("nyc"),))
    with pytest.raises(StreamError):
        api.filter()


def test_delivery_ratio_drops_tweets(firehose):
    lossy = StreamingAPI(firehose, delivery_ratio=0.5, seed=1)
    connection = lossy.filter(track=("soccer",))
    delivered = list(connection)
    assert connection.stats.dropped > 0
    assert len(delivered) < connection.stats.matched
    assert 0.35 < connection.stats.delivered / connection.stats.matched < 0.65


def test_connection_limit(api):
    connections = [api.filter(track=(f"kw{i}",)) for i in range(4)]
    with pytest.raises(StreamError):
        api.filter(track=("overflow",))
    connections[0].close()
    api.filter(track=("now-ok",))


def test_drained_connection_releases_slot(api):
    """Iterating a connection to exhaustion frees its connection slot —
    otherwise a handful of completed queries would wedge the session."""
    for _ in range(6):  # more than the connection limit
        connection = api.filter(track=("tevez",))
        for _tweet in connection:
            pass
    assert api.open_connections == 0


def test_close_stops_iteration(api):
    connection = api.filter(track=("soccer",))
    iterator = iter(connection)
    next(iterator)
    connection.close()
    assert list(iterator) == []


def test_sample_rate(api, firehose):
    sample = api.sample(rate=0.05)
    expected = 0.05 * len(firehose)
    assert 0.5 * expected < len(sample) < 1.6 * expected


def test_sample_limit(api):
    assert len(api.sample(rate=0.5, limit=10)) == 10


def test_sample_validates_rate(api):
    with pytest.raises(ValueError):
        api.sample(rate=0.0)
    with pytest.raises(ValueError):
        api.sample(rate=1.5)


def test_unfiltered_returns_everything(firehose):
    api = StreamingAPI(firehose, delivery_ratio=1.0)
    assert len(list(api.unfiltered())) == len(firehose)


def test_stream_advances_clock(firehose):
    clock = VirtualClock(start=0.0)
    api = StreamingAPI(firehose, clock=clock, delivery_ratio=1.0)
    connection = api.filter(track=("soccer",))
    iterator = iter(connection)
    first = next(iterator)
    assert clock.now == first.created_at
    second = next(iterator)
    assert clock.now == second.created_at >= first.created_at


def test_selectivity_stat(api):
    connection = api.filter(track=("tevez",))
    list(connection)
    assert 0.0 < connection.stats.selectivity < 0.5
