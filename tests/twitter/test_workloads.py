"""Scenario generators: determinism, ground truth, and burst shapes."""

import pytest

from repro.twitter.users import UserPopulation
from repro.twitter.workloads import (
    GroundTruth,
    ScenarioEvent,
    background_chatter,
    earthquake_scenario,
    news_month_scenario,
    soccer_match_scenario,
)


@pytest.fixture(scope="module")
def pop():
    return UserPopulation(size=600, seed=5)


@pytest.fixture(scope="module")
def soccer_small(pop):
    return soccer_match_scenario(seed=5, population=pop, intensity=0.25)


def test_tweets_sorted_and_ids_increasing(soccer_small):
    times = [t.created_at for t in soccer_small.tweets]
    assert times == sorted(times)
    ids = [t.tweet_id for t in soccer_small.tweets]
    assert ids == sorted(ids)
    assert len(set(ids)) == len(ids)


def test_deterministic_per_seed(pop):
    a = soccer_match_scenario(seed=8, population=pop, intensity=0.1)
    b = soccer_match_scenario(seed=8, population=pop, intensity=0.1)
    assert [t.text for t in a.tweets[:200]] == [t.text for t in b.tweets[:200]]
    c = soccer_match_scenario(seed=9, population=pop, intensity=0.1)
    assert [t.text for t in a.tweets[:200]] != [t.text for t in c.tweets[:200]]


def test_soccer_has_three_goal_events(soccer_small):
    events = soccer_small.truth.events
    assert len(events) == 3
    assert events[2].expected_terms == ("tevez", "3-0")


def test_goal_bursts_raise_local_rate(soccer_small):
    """Tweet volume in a goal's first two minutes dwarfs a quiet stretch."""
    goal = soccer_small.truth.events[0]
    burst = sum(
        1
        for t in soccer_small.tweets
        if goal.time <= t.created_at < goal.time + 120
    )
    quiet_start = goal.time - 600
    quiet = sum(
        1
        for t in soccer_small.tweets
        if quiet_start <= t.created_at < quiet_start + 120
    )
    assert burst > 3 * max(quiet, 1)


def test_ground_truth_labels_present(soccer_small):
    for tweet in soccer_small.tweets[:500]:
        truth = tweet.ground_truth
        assert truth["sentiment"] in (-1, 0, 1)
        assert truth["topic"] in ("chatter", "soccer")
        assert "coords" in truth


def test_goal_tweets_name_the_scorer(soccer_small):
    goal3 = [
        t for t in soccer_small.tweets if t.ground_truth["event_id"] == 3
    ]
    assert goal3
    naming = sum(1 for t in goal3 if "tevez" in t.text.lower())
    assert naming > 0.9 * len(goal3)


def test_event_near():
    truth = GroundTruth(
        events=(
            ScenarioEvent(1, "a", time=100.0, start=100.0, end=200.0),
            ScenarioEvent(2, "b", time=500.0, start=500.0, end=600.0),
        )
    )
    assert truth.event_near(110.0, tolerance=60.0).event_id == 1
    assert truth.event_near(480.0, tolerance=60.0).event_id == 2
    assert truth.event_near(300.0, tolerance=60.0) is None


def test_earthquake_events_scale_with_magnitude(pop):
    scenario = earthquake_scenario(seed=5, population=pop, intensity=0.3)
    by_event: dict[int, int] = {}
    for tweet in scenario.tweets:
        event_id = tweet.ground_truth.get("event_id")
        if event_id is not None and tweet.ground_truth["topic"] == "earthquake":
            by_event[event_id] = by_event.get(event_id, 0) + 1
    magnitudes = {e.event_id: e.info["magnitude"] for e in scenario.truth.events}
    # The M6.9 event must out-tweet the M5.1 event.
    biggest = max(magnitudes, key=magnitudes.get)
    smallest = min(magnitudes, key=magnitudes.get)
    assert by_event[biggest] > 2 * by_event[smallest]


def test_earthquake_authors_cluster_near_epicenter(pop):
    scenario = earthquake_scenario(seed=5, population=pop, intensity=0.3)
    event = scenario.truth.events[0]  # Christchurch
    city = pop.gazetteer.lookup(event.info["place"])
    quake_tweets = [
        t for t in scenario.tweets if t.ground_truth.get("event_id") == event.event_id
    ]
    near = sum(
        1
        for t in quake_tweets
        if t.ground_truth["coords"] is not None
        and abs(t.ground_truth["coords"][0] - city.lat) <= 12.0
        and abs(t.ground_truth["coords"][1] - city.lon) <= 12.0
    )
    assert near > 0.9 * len(quake_tweets)


def test_news_month_events_have_expected_terms(pop):
    scenario = news_month_scenario(
        seed=5, population=pop, days=10, n_stories=3, intensity=0.2
    )
    assert len(scenario.truth.events) == 3
    for event in scenario.truth.events:
        assert event.expected_terms
        story_tweets = [
            t for t in scenario.tweets
            if t.ground_truth.get("event_id") == event.event_id
        ]
        assert story_tweets
        mentioning = sum(
            1 for t in story_tweets if event.expected_terms[0] in t.text.lower()
        )
        assert mentioning > 0.8 * len(story_tweets)


def test_chatter_has_no_events(pop):
    scenario = background_chatter(seed=5, population=pop, duration=600.0, rate=2.0)
    assert scenario.truth.events == ()
    assert all(t.ground_truth["topic"] == "chatter" for t in scenario.tweets)


def test_intensity_scales_volume(pop):
    small = background_chatter(seed=5, population=pop, duration=1200.0, rate=1.0)
    large = background_chatter(seed=5, population=pop, duration=1200.0, rate=4.0)
    assert len(large) > 2.5 * len(small)
