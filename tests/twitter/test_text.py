"""Tweet text composers."""

import random

import pytest

from repro.twitter import text as text_mod


@pytest.fixture()
def rng():
    return random.Random(17)


def test_chatter_within_length(rng):
    for _ in range(200):
        body, sentiment = text_mod.compose_chatter(rng)
        assert len(body) <= 140
        assert sentiment in (-1, 0, 1)


def test_chatter_sentiment_mix(rng):
    labels = [text_mod.compose_chatter(rng)[1] for _ in range(1000)]
    assert labels.count(1) > 100
    assert labels.count(-1) > 50
    assert labels.count(0) > 300


def test_goal_contains_scorer_and_score(rng):
    for _ in range(100):
        body, _ = text_mod.compose_soccer_goal(rng, "tevez", "3-0", "manchester city", 0.6)
        assert "tevez" in body.lower()
        assert "3-0" in body


def test_goal_supporter_share_drives_sentiment(rng):
    happy = [
        text_mod.compose_soccer_goal(rng, "tevez", "1-0", "city", 0.9)[1]
        for _ in range(500)
    ]
    sad = [
        text_mod.compose_soccer_goal(rng, "tevez", "1-0", "city", 0.1)[1]
        for _ in range(500)
    ]
    assert happy.count(1) > 350
    assert sad.count(-1) > 350


def test_goal_never_neutral(rng):
    labels = {text_mod.compose_soccer_goal(rng, "x", "1-0", "t", 0.5)[1] for _ in range(50)}
    assert labels <= {1, -1}


def test_play_mentions_topic(rng):
    body, _ = text_mod.compose_soccer_play(rng, "soccer")
    assert isinstance(body, str) and body


def test_earthquake_mentions_place_and_skews_negative(rng):
    labels = []
    for _ in range(300):
        body, label = text_mod.compose_earthquake(rng, "Christchurch", 6.3)
        labels.append(label)
        assert "christchurch" in body.lower() or "Christchurch" in body
    assert labels.count(-1) > labels.count(1)


def test_news_sentiment_mix_controllable(rng):
    positive = [
        text_mod.compose_news(rng, "signs", "the bill", positive=0.8, negative=0.1)[1]
        for _ in range(400)
    ]
    negative = [
        text_mod.compose_news(rng, "signs", "the bill", positive=0.1, negative=0.8)[1]
        for _ in range(400)
    ]
    assert positive.count(1) > 240
    assert negative.count(-1) > 240


def test_sample_sentiment_distribution(rng):
    draws = [text_mod.sample_sentiment(rng, 0.5, 0.3) for _ in range(2000)]
    assert 800 < draws.count(1) < 1200
    assert 450 < draws.count(-1) < 750
    assert 250 < draws.count(0) < 550


def test_truncate_prefers_word_boundary():
    long_text = "word " * 50
    truncated = text_mod._truncate(long_text)
    assert len(truncated) <= 140
    assert not truncated.endswith("wor")
