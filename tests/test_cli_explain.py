"""The ``tweeql explain`` subcommand."""

import json

from repro.cli import main

ARGS = ["--scenario", "soccer", "--population", "400", "--seed", "3"]
SQL = "SELECT text FROM twitter WHERE text contains 'goal' LIMIT 5;"


def test_plan_only_runs_nothing(capsys):
    code = main([*ARGS, "explain", "--sql", SQL])
    assert code == 0
    out = capsys.readouterr().out
    assert "== <--sql>" in out
    assert "Scan: twitter" in out
    assert "EXPLAIN ANALYZE" not in out


def test_analyze_annotates_the_plan(capsys):
    code = main([*ARGS, "explain", "--sql", SQL, "--analyze"])
    assert code == 0
    out = capsys.readouterr().out
    assert "-- EXPLAIN ANALYZE" in out
    assert "query totals:" in out
    assert "trace:" in out


def test_analyze_writes_chrome_trace(tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    code = main(
        [*ARGS, "explain", "--sql", SQL, "--analyze",
         "--trace", str(trace_path)]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert f"wrote Chrome trace for 1 query to {trace_path}" in out
    document = json.loads(trace_path.read_text(encoding="utf-8"))
    assert document["displayTimeUnit"] == "ms"
    assert any(e["ph"] == "X" for e in document["traceEvents"])


def test_tql_files_split_into_statements(tmp_path, capsys):
    queries = tmp_path / "queries.tql"
    queries.write_text(
        "-- two statements\n"
        "SELECT text FROM twitter WHERE text contains 'goal' LIMIT 2;\n"
        "SELECT text FROM twitter WHERE text contains 'city' LIMIT 2;\n",
        encoding="utf-8",
    )
    code = main([*ARGS, "explain", str(queries)])
    assert code == 0
    out = capsys.readouterr().out
    assert f"== {queries}:1" in out
    assert f"== {queries}:2" in out


def test_trace_without_analyze_is_an_error(tmp_path, capsys):
    code = main(
        [*ARGS, "explain", "--sql", SQL, "--trace", str(tmp_path / "t.json")]
    )
    assert code == 2
    assert "--trace requires --analyze" in capsys.readouterr().err


def test_no_queries_is_an_error(capsys):
    code = main([*ARGS, "explain"])
    assert code == 2
    assert "nothing to explain" in capsys.readouterr().err


def test_bad_sql_fails_but_keeps_going(capsys):
    code = main([*ARGS, "explain", "--sql", "SELECT bogus FROM nowhere;",
                 "--sql", SQL])
    assert code == 1
    out = capsys.readouterr().out
    assert "error:" in out
    assert "Scan: twitter" in out
