"""Property-based parser fuzzing: ``parse(expr.to_sql())`` is the identity.

Generates random expression trees from the constructs the dialect
round-trips exactly (BETWEEN desugars, so it is excluded), renders them
through ``to_sql()``, and reparses. Any mismatch is a lexer/parser/printer
disagreement.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql import ast, parse
from repro.sql.lexer import KEYWORDS

_identifier = (
    st.from_regex(r"[a-z_][a-z0-9_]{0,10}", fullmatch=True)
    .filter(lambda s: s.upper() not in KEYWORDS)
)

_number = st.one_of(
    st.integers(0, 10_000),
    # Quarters avoid exponent notation in repr(), which the lexer
    # (faithfully to the original dialect) does not accept.
    st.integers(0, 40_000).map(lambda n: n / 4.0).filter(lambda f: f != int(f)),
)

_string = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    max_size=12,
)

_literal = st.one_of(
    _number.map(ast.Literal),
    _string.map(ast.Literal),
    st.just(ast.Literal(None)),
    st.booleans().map(ast.Literal),
)

_field = _identifier.map(ast.FieldRef)

_scalar_leaf = st.one_of(_literal, _field)

_comparison_ops = st.sampled_from(["=", "!=", "<", "<=", ">", ">="])
_arith_ops = st.sampled_from(["+", "-", "*", "/", "%"])


def _scalar_inner(children):
    return st.one_of(
        st.tuples(_arith_ops, children, children).map(
            lambda t: ast.BinaryOp(t[0], t[1], t[2])
        ),
        children.map(lambda c: ast.UnaryOp("NEG", c)),
        st.tuples(_identifier, st.lists(children, max_size=2)).map(
            lambda t: ast.FuncCall(name=t[0].lower(), args=tuple(t[1]))
        ),
    )


_scalar = st.recursive(_scalar_leaf, _scalar_inner, max_leaves=8)


def _bool_leaf():
    return st.one_of(
        st.tuples(_comparison_ops, _scalar, _scalar).map(
            lambda t: ast.BinaryOp(t[0], t[1], t[2])
        ),
        st.tuples(_field, _string).map(
            lambda t: ast.BinaryOp("CONTAINS", t[0], ast.Literal(t[1]))
        ),
        _scalar.map(lambda s: ast.UnaryOp("IS NULL", s)),
        _scalar.map(lambda s: ast.UnaryOp("IS NOT NULL", s)),
        st.tuples(_field, st.lists(_literal, min_size=1, max_size=3)).map(
            lambda t: ast.InList(t[0], tuple(t[1]))
        ),
        st.tuples(_field, st.sampled_from(["NYC", "boston", "tokyo"])).map(
            lambda t: ast.BinaryOp("IN_BBOX", t[0], ast.BBox(name=t[1]))
        ),
    )


def _bool_inner(children):
    return st.one_of(
        st.tuples(children, children).map(
            lambda t: ast.BinaryOp("AND", t[0], t[1])
        ),
        st.tuples(children, children).map(
            lambda t: ast.BinaryOp("OR", t[0], t[1])
        ),
        children.map(lambda c: ast.UnaryOp("NOT", c)),
    )


_boolean = st.recursive(_bool_leaf(), _bool_inner, max_leaves=6)


@given(expr=_scalar)
@settings(max_examples=300)
def test_scalar_expressions_round_trip(expr):
    sql = f"SELECT {expr.to_sql()} AS c FROM t;"
    statement = parse(sql)
    assert statement.select[0].expr == expr
    assert parse(statement.to_sql()) == statement


@given(where=_boolean)
@settings(max_examples=300)
def test_boolean_expressions_round_trip(where):
    sql = f"SELECT x FROM t WHERE {where.to_sql()};"
    statement = parse(sql)
    assert statement.where == where


@given(
    size=st.integers(1, 10_000),
    slide=st.integers(1, 10_000) | st.none(),
    limit=st.integers(0, 100) | st.none(),
)
def test_statement_clauses_round_trip(size, slide, limit):
    window = ast.WindowSpec(
        size_seconds=float(size),
        slide_seconds=float(slide) if slide is not None else None,
    )
    statement = ast.SelectStatement(
        select=(ast.SelectItem(ast.FuncCall("count", (ast.Star(),)), "n"),),
        source="twitter",
        group_by=(ast.FieldRef("lang"),),
        window=window,
        limit=limit,
        into="sink",
    )
    reparsed = parse(statement.to_sql())
    assert reparsed.window.size_seconds == window.size_seconds
    assert reparsed.window.slide == window.slide
    assert reparsed.limit == limit
    assert reparsed.into == "sink"
