"""Parser: the paper's queries plus the dialect's corners."""

import pytest

from repro.errors import ParseError
from repro.sql import ast, parse


def test_paper_query_1():
    stmt = parse(
        "SELECT sentiment(text), latitude(loc), longitude(loc) "
        "FROM twitter WHERE text contains 'obama';"
    )
    assert stmt.source == "twitter"
    assert len(stmt.select) == 3
    assert isinstance(stmt.select[0].expr, ast.FuncCall)
    assert stmt.select[0].expr.name == "sentiment"
    assert isinstance(stmt.where, ast.BinaryOp)
    assert stmt.where.op == "CONTAINS"


def test_paper_query_2_bbox():
    stmt = parse(
        "SELECT text FROM twitter WHERE text contains 'obama' "
        "AND location in [bounding box for NYC];"
    )
    conjunct = stmt.where
    assert conjunct.op == "AND"
    bbox_side = conjunct.right
    assert bbox_side.op == "IN_BBOX"
    assert isinstance(bbox_side.right, ast.BBox)
    assert bbox_side.right.name == "NYC"


def test_paper_query_3_group_window():
    stmt = parse(
        "SELECT AVG(sentiment(text)), floor(latitude(loc)) AS lat, "
        "floor(longitude(loc)) AS long FROM twitter "
        "WHERE text contains 'obama' GROUP BY lat, long WINDOW 3 hours;"
    )
    assert stmt.select[1].alias == "lat"
    assert stmt.select[2].alias == "long"  # soft keyword as alias
    assert [g.name for g in stmt.group_by] == ["lat", "long"]
    assert stmt.window.size_seconds == 3 * 3600
    assert stmt.window.tumbling


def test_numeric_bbox():
    stmt = parse("SELECT text FROM twitter WHERE location in [bbox 40.4, -74.2, 40.9, -73.7];")
    box = stmt.where.right
    assert box.coords == (40.4, -74.2, 40.9, -73.7)


def test_window_every_sliding():
    stmt = parse("SELECT COUNT(*) FROM twitter WINDOW 5 minutes EVERY 1 minute;")
    assert stmt.window.size_seconds == 300
    assert stmt.window.slide == 60
    assert not stmt.window.tumbling


def test_count_star():
    stmt = parse("SELECT COUNT(*) FROM twitter WINDOW 1 minutes;")
    call = stmt.select[0].expr
    assert call.name == "count"
    assert isinstance(call.args[0], ast.Star)


def test_count_distinct():
    stmt = parse("SELECT COUNT(DISTINCT user_id) FROM twitter WINDOW 1 minutes;")
    assert stmt.select[0].expr.distinct


def test_select_star():
    stmt = parse("SELECT * FROM twitter;")
    assert isinstance(stmt.select[0].expr, ast.Star)


def test_alias_without_as():
    stmt = parse("SELECT text body FROM twitter;")
    assert stmt.select[0].alias == "body"


def test_operator_precedence_and_or():
    stmt = parse("SELECT text FROM twitter WHERE a = 1 OR b = 2 AND c = 3;")
    assert stmt.where.op == "OR"
    assert stmt.where.right.op == "AND"


def test_not_precedence():
    stmt = parse("SELECT text FROM twitter WHERE NOT a = 1 AND b = 2;")
    assert stmt.where.op == "AND"
    assert stmt.where.left.op == "NOT"


def test_arithmetic_precedence():
    stmt = parse("SELECT 1 + 2 * 3 FROM twitter;")
    expr = stmt.select[0].expr
    assert expr.op == "+"
    assert expr.right.op == "*"


def test_parentheses_override():
    stmt = parse("SELECT (1 + 2) * 3 FROM twitter;")
    assert stmt.select[0].expr.op == "*"


def test_unary_minus():
    stmt = parse("SELECT -x FROM twitter;")
    assert stmt.select[0].expr.op == "NEG"


def test_between_desugars():
    stmt = parse("SELECT text FROM twitter WHERE followers BETWEEN 10 AND 20;")
    expr = stmt.where
    assert expr.op == "AND"
    assert expr.left.op == ">="
    assert expr.right.op == "<="


def test_in_list():
    stmt = parse("SELECT text FROM twitter WHERE lang IN ('en', 'pt');")
    assert isinstance(stmt.where, ast.InList)
    assert len(stmt.where.values) == 2


def test_not_in_list():
    stmt = parse("SELECT text FROM twitter WHERE lang NOT IN ('en');")
    assert stmt.where.op == "NOT"
    assert isinstance(stmt.where.operand, ast.InList)


def test_is_null_and_is_not_null():
    stmt = parse("SELECT text FROM twitter WHERE geo_lat IS NULL AND loc IS NOT NULL;")
    assert stmt.where.left.op == "IS NULL"
    assert stmt.where.right.op == "IS NOT NULL"


def test_matches_and_like():
    stmt = parse("SELECT text FROM twitter WHERE text matches '^GOAL' OR text like 'goal%';")
    assert stmt.where.left.op == "MATCHES"
    assert stmt.where.right.op == "LIKE"


def test_having_order_limit_into():
    stmt = parse(
        "SELECT COUNT(*) AS n, text FROM twitter GROUP BY text "
        "WINDOW 1 minutes HAVING COUNT(*) > 2 ORDER BY n DESC LIMIT 5 INTO peaks;"
    )
    assert stmt.having is not None
    assert stmt.order_by[0][1] is True  # DESC
    assert stmt.limit == 5
    assert stmt.into == "peaks"


def test_join_clause():
    stmt = parse(
        "SELECT text FROM twitter JOIN other ON user_id = author_id WINDOW 1 minutes;"
    )
    assert stmt.join is not None
    assert stmt.join.source == "other"
    assert stmt.join.condition.op == "="


def test_literals():
    stmt = parse("SELECT NULL, TRUE, FALSE, 1.5, 'x' FROM twitter;")
    values = [item.expr.value for item in stmt.select]
    assert values == [None, True, False, 1.5, "x"]


def test_missing_from_raises():
    with pytest.raises(ParseError):
        parse("SELECT text;")


def test_trailing_garbage_raises():
    with pytest.raises(ParseError):
        parse("SELECT text FROM twitter; bogus")


def test_bad_window_unit_raises():
    with pytest.raises(ParseError):
        parse("SELECT COUNT(*) FROM twitter WINDOW 3 parsecs;")


def test_unterminated_bbox_raises():
    with pytest.raises(ParseError):
        parse("SELECT text FROM twitter WHERE location in [bounding box for;")


def test_error_reports_position():
    with pytest.raises(ParseError) as excinfo:
        parse("SELECT FROM twitter;")
    assert "position" in str(excinfo.value)


def test_to_sql_round_trips():
    """Rendering then reparsing yields an identical AST (fixed-point)."""
    queries = [
        "SELECT sentiment(text), latitude(loc) FROM twitter WHERE text contains 'obama';",
        "SELECT AVG(x) AS a, floor(y) AS b FROM twitter GROUP BY b WINDOW 60 seconds;",
        "SELECT text FROM twitter WHERE location in [bounding box for NYC] LIMIT 3;",
        "SELECT COUNT(*) FROM twitter WHERE a >= 1 AND b IS NULL WINDOW 5 minutes EVERY 60 seconds;",
    ]
    for sql in queries:
        first = parse(sql)
        second = parse(first.to_sql())
        assert first == second
