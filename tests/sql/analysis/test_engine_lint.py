"""The engine-source determinism lint (TQL920–TQL923).

Covers each rule firing on a minimal offending module, the path scoping
(engine/obs only; sanitizer.py exempt from the lock rule), the JSON
output shape (uniform with ``tweeql check --format=json``), and — the
satellite that matters in CI — an empty baseline over the real tree.
"""

from __future__ import annotations

import json

from repro.sql.analysis.engine_lint import lint_paths, lint_source, main

ENGINE = "src/repro/engine/fake.py"
OBS = "src/repro/obs/fake.py"


def codes(source: str, path: str = ENGINE) -> list[str]:
    return [f.diagnostic.code for f in lint_source(source, path)]


def test_wall_clock_reads_flagged():
    assert codes("import time\nt = time.time()\n") == ["TQL920"]
    assert codes("import time\nt = time.time_ns()\n") == ["TQL920"]
    assert codes(
        "from datetime import datetime\nd = datetime.now()\n"
    ) == ["TQL920"]
    assert codes(
        "import datetime\nd = datetime.datetime.utcnow()\n"
    ) == ["TQL920"]


def test_virtual_clock_not_flagged():
    assert codes("now = clock.now\nlater = ctx.clock.now\n") == []
    # perf_counter is a duration source, not wall-clock time-of-day.
    assert codes("import time\nt = time.perf_counter()\n") == []


def test_unseeded_random_flagged_seeded_allowed():
    assert codes("import random\nx = random.random()\n") == ["TQL921"]
    assert codes("import random\nr = random.Random()\n") == ["TQL921"]
    assert codes("import random\nr = random.Random(42)\n") == []
    assert codes("import random\nr = random.Random(seed)\n") == []


def test_bare_locks_flagged_registered_allowed():
    assert codes("import threading\nlock = threading.Lock()\n") == ["TQL922"]
    assert codes("import threading\nlock = threading.RLock()\n") == ["TQL922"]
    assert codes(
        "import threading\ncond = threading.Condition()\n"
    ) == ["TQL922"]
    clean = (
        "from repro.engine.sanitizer import registered_lock\n"
        "lock = registered_lock('mine')\n"
    )
    assert codes(clean) == []
    # Events/threads are not locks; the rule targets mutual exclusion.
    assert codes("import threading\nstop = threading.Event()\n") == []


def test_swallowed_exceptions_flagged_only_in_engine():
    swallow = "try:\n    work()\nexcept Exception:\n    pass\n"
    assert codes(swallow, ENGINE) == ["TQL923"]
    assert codes("try:\n    work()\nexcept:\n    pass\n", ENGINE) == ["TQL923"]
    # A handler that *does* something is fine.
    handled = "try:\n    work()\nexcept Exception as e:\n    log(e)\n"
    assert codes(handled, ENGINE) == []
    # Narrow types may be deliberately dropped.
    narrow = "try:\n    work()\nexcept KeyError:\n    pass\n"
    assert codes(narrow, ENGINE) == []
    # obs/ gets the determinism rules but not the except-pass rule.
    assert codes(swallow, OBS) == []


def test_scoping_outside_engine_and_obs():
    noisy = "import time, threading\nt = time.time()\nk = threading.Lock()\n"
    assert codes(noisy, "src/repro/twitter/workloads.py") == []
    assert codes(noisy, "tests/engine/test_x.py") == []
    assert codes(noisy, OBS) == ["TQL920", "TQL922"]


def test_sanitizer_module_exempt_from_lock_rule_only():
    noisy = "import time, threading\nt = time.time()\nk = threading.Lock()\n"
    found = codes(noisy, "src/repro/engine/sanitizer.py")
    assert found == ["TQL920"]  # the raw registry mutex is sanctioned


def test_findings_carry_spans_and_render_carets():
    source = "import time\nstamp = time.time()\n"
    (finding,) = lint_source(source, ENGINE)
    assert finding.line == 2
    rendered = finding.render(source)
    assert "TQL920" in rendered and "^" in rendered
    assert rendered.startswith(f"{ENGINE}:2:")


def test_json_format_uniform_with_check(tmp_path, capsys):
    bad = tmp_path / "engine" / "busted.py"
    bad.parent.mkdir()
    bad.write_text("import time\nt = time.time()\n", encoding="utf-8")
    exit_code = main([str(tmp_path), "--format", "json"])
    assert exit_code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["code"] == "TQL920"
    assert payload[0]["severity"] == "error"
    assert payload[0]["line"] == 2
    assert payload[0]["span"]["start"] > 0


def test_clean_tree_exits_zero(tmp_path, capsys):
    good = tmp_path / "engine" / "fine.py"
    good.parent.mkdir()
    good.write_text("x = 1\n", encoding="utf-8")
    assert main([str(tmp_path)]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_real_engine_tree_baseline_is_empty():
    findings = lint_paths(["src/repro/engine", "src/repro/obs"])
    rendered = [f.render() for f in findings]
    assert findings == [], "\n".join(rendered)


def test_findings_deterministically_ordered(tmp_path):
    module = tmp_path / "engine" / "multi.py"
    module.parent.mkdir()
    module.write_text(
        "import time, threading\n"
        "b = threading.Lock()\n"
        "a = time.time()\n",
        encoding="utf-8",
    )
    first = [f.as_dict() for f in lint_paths([str(tmp_path)])]
    second = [f.as_dict() for f in lint_paths([str(tmp_path)])]
    assert first == second
    assert [f["line"] for f in first] == [2, 3]
