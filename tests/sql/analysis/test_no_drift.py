"""No-drift property: the analyzer's verdict matches the engine's.

Hypothesis assembles queries from a grammar that mixes valid and invalid
fields, functions, aggregates, and clause tails. For every generated
query:

* analyzer-accepted (no gating errors) ⇒ the engine plans and executes
  it, and the output rows are identical at batch_size {1, 256} × workers
  {1, 4} — the analyzer never green-lights a query the engine rejects,
  and pure performance knobs never change results;
* analyzer-rejected ⇒ ``session.query`` raises a typed
  :class:`TweeQLError` carrying one of the predicted diagnostic codes.
"""

from __future__ import annotations

import pytest

pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import EngineConfig, TweeQL
from repro.errors import TweeQLError
from repro.sql.analysis import gate_result

BASE_TS = 1_307_000_000.0
SCHEMA = ("tweet_id", "text", "loc", "created_at", "lang", "followers")
WORDS = ("goal", "obama", "quake", "rain", "vote", "march")
LANGS = ("en", "es", "pt")

#: Deterministic stream: enough rows to close several 60-second windows,
#: with keyword/lang/followers variety so predicates are selective.
ROWS = [
    {
        "tweet_id": 1000 + i,
        "created_at": BASE_TS + 13.0 * i,
        "text": f"{WORDS[i % len(WORDS)]} {WORDS[(i * 5 + 2) % len(WORDS)]}",
        "lang": LANGS[i % len(LANGS)],
        "followers": (i * 137) % 2000,
        "loc": "London" if i % 4 else "",
    }
    for i in range(60)
]

SELECT_ITEMS = (
    "text",
    "followers",
    "lang",
    "lower(text) AS t",
    "length(text) AS n",
    "bogs",                    # TQL201
    "sentimant(text) AS s",    # TQL202
    "count(*) AS c",           # TQL207 unless windowed
    "avg(followers) AS f",
    "sum(bogs) AS sb",         # TQL201
)

WHERE_CONJUNCTS = (
    "text CONTAINS 'goal'",
    "followers > 500",
    "lang = 'en'",
    "folowers > 1",            # TQL201
    "text MATCHES '(bad'",     # TQL210
    "count(*) > 1",            # TQL203
)

TAILS = (
    "",
    " GROUP BY lang WINDOW 60 seconds",
    " WINDOW 120 seconds",
    " ORDER BY count(*) DESC",  # TQL205 without a windowed aggregate
    " GROUP BY lang WINDOW 60 seconds ORDER BY count(*) DESC LIMIT 2",
)


@st.composite
def queries(draw):
    items = draw(
        st.lists(st.sampled_from(SELECT_ITEMS), min_size=1, max_size=3)
    )
    conjuncts = draw(
        st.lists(st.sampled_from(WHERE_CONJUNCTS), min_size=0, max_size=2)
    )
    where = f" WHERE {' AND '.join(conjuncts)}" if conjuncts else ""
    tail = draw(st.sampled_from(TAILS))
    return f"SELECT {', '.join(items)} FROM s{where}{tail};"


def make_session(workers: int = 1, batch_size: int = 1) -> TweeQL:
    session = TweeQL(
        config=EngineConfig(workers=workers, batch_size=batch_size)
    )
    session.register_source(
        "s", lambda: iter([dict(r) for r in ROWS]), SCHEMA
    )
    return session


def run(session: TweeQL, sql: str) -> list[dict]:
    handle = session.query(sql)
    try:
        return handle.all()
    finally:
        handle.close()


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(sql=queries())
def test_analyzer_verdict_matches_engine(sql):
    baseline_session = make_session()
    gated = gate_result(baseline_session.analyze(sql))
    if gated.errors:
        expected = {d.code for d in gated.errors}
        with pytest.raises(TweeQLError) as excinfo:
            run(baseline_session, sql)
        assert getattr(excinfo.value, "code", None) in expected
    else:
        baseline = run(baseline_session, sql)
        for workers in (1, 4):
            for batch in (1, 256):
                rows = run(make_session(workers, batch), sql)
                assert rows == baseline, (workers, batch)


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(sql=queries())
def test_analysis_is_pure(sql):
    """Analyzing never raises and never mutates session state: the same
    query analyzed twice yields identical diagnostics, and analysis does
    not change what executes afterwards."""
    session = make_session()
    first = session.analyze(sql)
    second = session.analyze(sql)
    assert first.diagnostics == second.diagnostics
    assert [d.code for d in first.diagnostics] == [
        d.code for d in second.diagnostics
    ]
