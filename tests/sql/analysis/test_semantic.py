"""Semantic (TQL2xx) checks and lint (TQL3xx) rules via analyze_sql."""

import pytest

from repro.engine.session import EngineConfig
from repro.sql.analysis import Catalog, SourceInfo, analyze_sql


def codes(sql, **kwargs):
    return [d.code for d in analyze_sql(sql, **kwargs).diagnostics]


def make_catalog(live=True):
    twitter = Catalog.default().sources[0]
    return Catalog(
        sources=(
            SourceInfo("twitter", twitter.schema, live=live),
            SourceInfo("prices", ("created_at", "team", "price"), live=False),
            SourceInfo("teams", ("team", "city"), live=False),
        )
    )


# ---- TQL2xx ----------------------------------------------------------------


def test_unknown_source_tql212():
    result = analyze_sql("SELECT text FROM nowhere;")
    assert "TQL212" in [d.code for d in result.errors]
    [diag] = [d for d in result.errors if d.code == "TQL212"]
    assert diag.payload["available"] == ("twitter",)


def test_having_without_aggregation_tql204():
    assert "TQL204" in codes(
        "SELECT text FROM twitter WHERE text CONTAINS 'a' HAVING count(*) > 1;"
    )


def test_order_by_without_aggregate_tql205():
    assert "TQL205" in codes(
        "SELECT text FROM twitter WHERE text CONTAINS 'a' ORDER BY text;"
    )


def test_select_star_with_aggregates_tql206():
    assert "TQL206" in codes(
        "SELECT *, count(*) FROM twitter WHERE text CONTAINS 'a' "
        "WINDOW 1 minutes;"
    )


def test_aggregate_without_window_tql207():
    assert "TQL207" in codes(
        "SELECT count(*) FROM twitter WHERE text CONTAINS 'a';"
    )


def test_confidence_policy_lifts_tql207():
    from repro.engine.confidence import ConfidencePolicy

    config = EngineConfig(confidence_policy=ConfidencePolicy())
    sql = "SELECT avg(followers) FROM twitter WHERE text CONTAINS 'a';"
    assert "TQL207" not in codes(sql, config=config)
    assert "TQL207" in codes(sql)


def test_confidence_mode_restrictions_tql213():
    from repro.engine.confidence import ConfidencePolicy

    config = EngineConfig(confidence_policy=ConfidencePolicy())
    assert "TQL213" in codes(
        "SELECT count(*) FROM twitter WHERE text CONTAINS 'a';",
        config=config,
    )
    assert "TQL213" in codes(
        "SELECT avg(followers) FROM twitter WHERE text CONTAINS 'a' LIMIT 3;",
        config=config,
    )


def test_invalid_named_bbox_tql208():
    assert "TQL208" in codes(
        "SELECT text FROM twitter WHERE location IN "
        "[bounding box for Atlantis];"
    )


def test_invalid_coord_bbox_tql208():
    assert "TQL208" in codes(
        "SELECT text FROM twitter WHERE location IN "
        "[bbox 95.0, -74.5, 99.0, -73.5];"
    )


def test_like_requires_literal_tql209():
    assert "TQL209" in codes(
        "SELECT text FROM twitter WHERE text LIKE loc;"
    )


def test_invalid_regex_tql210():
    assert "TQL210" in codes(
        "SELECT text FROM twitter WHERE text MATCHES '(unclosed';"
    )


def test_aggregate_arity_tql211():
    assert "TQL211" in codes(
        "SELECT sum(followers, tweet_id) FROM twitter WINDOW 1 minutes;"
    )


def test_star_in_non_count_aggregate_tql211():
    assert "TQL211" in codes(
        "SELECT sum(*) FROM twitter WINDOW 1 minutes;"
    )


def test_distinct_sum_tql211():
    assert "TQL211" in codes(
        "SELECT sum(DISTINCT followers) FROM twitter WINDOW 1 minutes;"
    )


def test_stream_stream_join_needs_time_window_tql214():
    assert "TQL214" in codes(
        "SELECT text FROM twitter JOIN prices ON screen_name = team;",
        catalog=make_catalog(),
    )


def test_lookup_join_needs_no_window():
    result = analyze_sql(
        "SELECT text, city FROM twitter JOIN teams ON screen_name = team "
        "WHERE text CONTAINS 'goal';",
        catalog=make_catalog(),
    )
    assert result.errors == ()


def test_join_condition_shape_tql215():
    assert "TQL215" in codes(
        "SELECT text FROM twitter JOIN teams ON screen_name > team;",
        catalog=make_catalog(),
    )


def test_join_field_resolution_tql216():
    assert "TQL216" in codes(
        "SELECT text FROM twitter JOIN teams ON bogus = also_bogus;",
        catalog=make_catalog(),
    )


def test_join_merged_schema_resolves_right_fields():
    # 'city' comes from the right side; 'r_'-prefixing only on collision.
    result = analyze_sql(
        "SELECT city FROM twitter JOIN teams ON screen_name = team "
        "WHERE text CONTAINS 'goal';",
        catalog=make_catalog(),
    )
    assert result.errors == ()


def test_multiple_problems_reported_in_one_pass():
    result = analyze_sql(
        "SELECT bogs, sentimant(text) FROM twitter "
        "WHERE text MATCHES '(unclosed' ORDER BY text;"
    )
    found = {d.code for d in result.errors}
    assert {"TQL201", "TQL202", "TQL210", "TQL205"} <= found


def test_aliases_visible_to_group_by_and_having():
    result = analyze_sql(
        "SELECT lower(text) AS t, count(*) FROM twitter "
        "WHERE text CONTAINS 'a' GROUP BY t WINDOW 1 minutes "
        "HAVING count(*) > 1;"
    )
    assert result.errors == ()


def test_aliases_not_visible_to_where():
    result = analyze_sql(
        "SELECT lower(text) AS t FROM twitter WHERE t = 'x';"
    )
    assert "TQL201" in [d.code for d in result.errors]


# ---- TQL3xx lints ----------------------------------------------------------


def test_firehose_lint_tql304_only_for_live_sources():
    live = analyze_sql("SELECT text FROM twitter;")
    assert "TQL304" in [d.code for d in live.warnings]
    static = analyze_sql(
        "SELECT price FROM prices;", catalog=make_catalog()
    )
    assert "TQL304" not in [d.code for d in static.diagnostics]


def test_api_eligible_filter_suppresses_tql304():
    for sql in (
        "SELECT text FROM twitter WHERE text CONTAINS 'obama';",
        "SELECT text FROM twitter WHERE location IN [bounding box for NYC];",
        "SELECT text FROM twitter WHERE user_id IN (1, 2);",
    ):
        assert "TQL304" not in codes(sql), sql


def test_high_latency_before_cheap_tql302():
    slow_first = analyze_sql(
        "SELECT text FROM twitter WHERE latitude(loc) > 0 "
        "AND text CONTAINS 'obama';"
    )
    assert "TQL302" in [d.code for d in slow_first.warnings]
    cheap_first = analyze_sql(
        "SELECT text FROM twitter WHERE text CONTAINS 'obama' "
        "AND latitude(loc) > 0;"
    )
    assert "TQL302" not in [d.code for d in cheap_first.diagnostics]


def test_catastrophic_regex_tql303():
    assert "TQL303" in codes(
        "SELECT text FROM twitter WHERE text CONTAINS 'a' "
        "AND text MATCHES '(x+)+y';"
    )
    assert "TQL303" not in codes(
        "SELECT text FROM twitter WHERE text CONTAINS 'a' "
        "AND text MATCHES 'goo+al';"
    )


def test_constant_predicate_tql305():
    always = analyze_sql(
        "SELECT text FROM twitter WHERE text CONTAINS 'a' AND 1 = 1;"
    )
    assert any(
        d.code == "TQL305" and "always true" in d.message
        for d in always.warnings
    )
    never = analyze_sql(
        "SELECT text FROM twitter WHERE text CONTAINS 'a' AND 1 = 2;"
    )
    assert any(
        d.code == "TQL305" and "never true" in d.message
        for d in never.warnings
    )


def test_redundant_alias_tql306():
    result = analyze_sql(
        "SELECT text AS text FROM twitter WHERE text CONTAINS 'a';"
    )
    assert "TQL306" in [d.code for d in result.infos]


def test_shadowing_alias_tql306():
    result = analyze_sql(
        "SELECT lower(text) AS lang FROM twitter WHERE text CONTAINS 'a';"
    )
    assert "TQL306" in [d.code for d in result.warnings]


def test_now_pinning_tql307():
    result = analyze_sql(
        "SELECT now() - created_at AS lag FROM twitter "
        "WHERE text CONTAINS 'a';",
        config=EngineConfig(batch_size=256),
    )
    assert "TQL307" in [d.code for d in result.infos]
    row_at_a_time = analyze_sql(
        "SELECT now() - created_at AS lag FROM twitter "
        "WHERE text CONTAINS 'a';",
        config=EngineConfig(batch_size=1),
    )
    assert "TQL307" not in [d.code for d in row_at_a_time.diagnostics]


@pytest.mark.parametrize(
    "sql",
    [
        "SELECT count(*) FROM twitter WHERE text CONTAINS 'a' "
        "WINDOW 1 minutes;",  # global aggregate: one group
        "SELECT meandev(followers) FROM twitter WHERE text CONTAINS 'a';",
        "SELECT count(*) FROM twitter WHERE text CONTAINS 'a' "
        "GROUP BY lang WINDOW 10 tweets;",  # count window
    ],
)
def test_serial_fallback_tql308(sql):
    result = analyze_sql(sql, config=EngineConfig(workers=4))
    assert "TQL308" in [d.code for d in result.infos]
    serial = analyze_sql(sql, config=EngineConfig(workers=1))
    assert "TQL308" not in [d.code for d in serial.diagnostics]


def test_clean_query_has_no_diagnostics():
    result = analyze_sql(
        "SELECT sentiment(text), latitude(loc) FROM twitter "
        "WHERE text CONTAINS 'obama';"
    )
    assert result.diagnostics == ()
    assert result.ok(strict=True)


def test_worker_oversubscription_tql309():
    import os

    cores = os.cpu_count() or 1
    result = analyze_sql(
        "SELECT text FROM twitter WHERE text CONTAINS 'a';",
        config=EngineConfig(workers=cores + 4),
    )
    assert "TQL309" in [d.code for d in result.infos]
    within = analyze_sql(
        "SELECT text FROM twitter WHERE text CONTAINS 'a';",
        config=EngineConfig(workers=1),
    )
    assert "TQL309" not in [d.code for d in within.diagnostics]


def test_process_fallback_tql310_serial_shape():
    result = analyze_sql(
        "SELECT meandev(followers) FROM twitter WHERE text CONTAINS 'a';",
        config=EngineConfig(workers=4, shard_backend="process"),
    )
    messages = {d.code: d.message for d in result.infos}
    assert "TQL310" in messages
    assert "runs serially" in messages["TQL310"]


def test_process_fallback_tql310_web_service_udf():
    result = analyze_sql(
        "SELECT latitude(loc) AS lat FROM twitter WHERE text CONTAINS 'a';",
        config=EngineConfig(workers=4, shard_backend="process"),
    )
    messages = {d.code: d.message for d in result.infos}
    assert "TQL310" in messages
    assert "thread workers" in messages["TQL310"]


def test_process_backend_clean_shape_has_no_tql310():
    result = analyze_sql(
        "SELECT text FROM twitter WHERE text CONTAINS 'a';",
        config=EngineConfig(workers=2, shard_backend="process"),
    )
    assert "TQL310" not in [d.code for d in result.diagnostics]
    thread = analyze_sql(
        "SELECT latitude(loc) AS lat FROM twitter WHERE text CONTAINS 'a';",
        config=EngineConfig(workers=4, shard_backend="thread"),
    )
    assert "TQL310" not in [d.code for d in thread.diagnostics]
