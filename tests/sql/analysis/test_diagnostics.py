"""Diagnostic records, sink ordering, and caret rendering."""

from repro.sql.analysis.diagnostics import Diagnostic, DiagnosticSink, Severity
from repro.sql.ast import Span


def test_severity_rank_orders_errors_first():
    assert Severity.ERROR.rank < Severity.WARNING.rank < Severity.INFO.rank


def test_as_dict_includes_span_and_hint():
    diag = Diagnostic(
        "TQL201", Severity.ERROR, "unknown field: 'bogs'",
        Span(7, 11), "did you mean 'loc'?",
    )
    assert diag.as_dict() == {
        "code": "TQL201",
        "severity": "error",
        "message": "unknown field: 'bogs'",
        "span": {"start": 7, "end": 11},
        "hint": "did you mean 'loc'?",
    }


def test_as_dict_omits_absent_fields():
    diag = Diagnostic("TQL304", Severity.WARNING, "firehose")
    assert diag.as_dict() == {
        "code": "TQL304",
        "severity": "warning",
        "message": "firehose",
    }


def test_render_caret_snippet_underlines_span():
    sql = "SELECT bogs FROM twitter;"
    diag = Diagnostic("TQL201", Severity.ERROR, "unknown field", Span(7, 11))
    rendered = diag.render(sql)
    lines = rendered.splitlines()
    assert lines[0] == "TQL201 error: unknown field"
    assert lines[1] == "  SELECT bogs FROM twitter;"
    assert lines[2] == "         ^^^^"


def test_render_caret_snippet_multiline_source():
    sql = "SELECT text\nFROM twitter\nWHERE bogs = 1;"
    start = sql.index("bogs")
    diag = Diagnostic(
        "TQL201", Severity.ERROR, "unknown field", Span(start, start + 4)
    )
    lines = diag.render(sql).splitlines()
    assert lines[1] == "  WHERE bogs = 1;"
    assert lines[2] == "        ^^^^"


def test_render_without_source_omits_snippet():
    diag = Diagnostic(
        "TQL201", Severity.ERROR, "unknown field", Span(7, 11), "a hint"
    )
    assert diag.render() == "TQL201 error: unknown field\n  hint: a hint"


def test_sink_collect_sorts_by_severity_then_position():
    sink = DiagnosticSink()
    sink.warning("TQL305", "late warning", Span(3, 4))
    sink.error("TQL201", "late error", Span(20, 21))
    sink.error("TQL202", "early error", Span(2, 3))
    sink.info("TQL308", "note", Span(0, 1))
    codes = [d.code for d in sink.collect()]
    assert codes == ["TQL202", "TQL201", "TQL305", "TQL308"]
    assert sink.has_errors


def test_payload_excluded_from_equality():
    a = Diagnostic(
        "TQL201", Severity.ERROR, "m", payload={"name": "x", "available": ()}
    )
    b = Diagnostic("TQL201", Severity.ERROR, "m", payload=None)
    assert a == b
