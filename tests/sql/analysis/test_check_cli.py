"""The ``tweeql check`` subcommand: exit codes, formats, file splitting."""

import json

import pytest

from repro.cli import main, split_statements

CLEAN = "SELECT text FROM twitter WHERE text CONTAINS 'obama';"
WARN_ONLY = "SELECT text FROM twitter;"  # TQL304 firehose warning
BROKEN = "SELECT bogs FROM twitter WHERE text CONTAINS 'a';"  # TQL201


def test_clean_query_exits_zero(capsys):
    assert main(["check", "--sql", CLEAN]) == 0
    out = capsys.readouterr().out
    assert "no issues found" in out
    assert "checked 1 query: ok" in out


def test_error_query_exits_one(capsys):
    assert main(["check", "--sql", BROKEN]) == 1
    out = capsys.readouterr().out
    assert "TQL201" in out
    assert "checked 1 query: FAILED" in out


def test_warnings_pass_without_strict(capsys):
    assert main(["check", "--sql", WARN_ONLY]) == 0
    assert "TQL304" in capsys.readouterr().out


def test_strict_turns_warnings_into_failure(capsys):
    assert main(["check", "--strict", "--sql", WARN_ONLY]) == 1
    assert "FAILED" in capsys.readouterr().out


def test_nothing_to_check_exits_two(capsys):
    assert main(["check"]) == 2
    assert "nothing to check" in capsys.readouterr().err


def test_json_format_shape(capsys):
    code = main(
        ["check", "--format=json", "--sql", CLEAN, "--sql", BROKEN]
    )
    assert code == 1
    report = json.loads(capsys.readouterr().out)
    assert report["ok"] is False
    assert [q["ok"] for q in report["queries"]] == [True, False]
    diag = report["queries"][1]["diagnostics"][0]
    assert diag["code"] == "TQL201"
    assert diag["severity"] == "error"
    assert set(diag["span"]) == {"start", "end"}


def test_checks_tql_files(tmp_path, capsys):
    path = tmp_path / "queries.tql"
    path.write_text(
        "-- a comment line\n"
        f"{CLEAN}\n\n"
        f"{BROKEN}\n",
        encoding="utf-8",
    )
    assert main(["check", str(path)]) == 1
    out = capsys.readouterr().out
    assert f"{path}:1" in out
    assert f"{path}:2" in out
    assert "checked 2 queries: FAILED" in out


def test_repo_example_files_are_strict_clean():
    import pathlib

    examples = sorted(
        str(p)
        for p in (
            pathlib.Path(__file__).parents[3] / "examples" / "queries"
        ).glob("*.tql")
    )
    assert examples, "examples/queries/*.tql missing"
    assert main(["check", "--strict", *examples]) == 0


@pytest.mark.parametrize(
    ("text", "expected"),
    [
        ("SELECT 1;", ["SELECT 1;"]),
        ("a;\nb;", ["a;", "b;"]),
        ("-- comment\na;", ["a;"]),
        ("a\n -- full-line comment\n;b;", ["a;", "b;"]),
        ("   \n\n", []),
        ("no trailing semicolon", ["no trailing semicolon;"]),
    ],
)
def test_split_statements(text, expected):
    assert split_statements(text) == expected
