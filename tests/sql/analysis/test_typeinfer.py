"""Type inference over expressions and typed UDF signatures."""

import pytest

from repro.engine.functions import default_registry
from repro.sql.analysis.diagnostics import DiagnosticSink
from repro.sql.analysis.typeinfer import (
    SqlType,
    TypeInferencer,
    field_types_for,
)
from repro.sql.parser import parse
from repro.twitter.models import TWITTER_SCHEMA

FIELD_TYPES = field_types_for(TWITTER_SCHEMA)


def infer(sql_expr: str, allow_aggregates: bool = False):
    """Infer the type of the WHERE expression of a probe query."""
    statement = parse(f"SELECT text FROM t WHERE {sql_expr};")
    sink = DiagnosticSink()
    inferencer = TypeInferencer(
        default_registry(), FIELD_TYPES, sink,
        allow_aggregates=allow_aggregates,
    )
    result = inferencer.infer(statement.where)
    return result, sink.collect()


@pytest.mark.parametrize(
    ("expr", "expected"),
    [
        ("text = 'x'", SqlType.BOOLEAN),
        ("followers + 1 > 2", SqlType.BOOLEAN),
        ("length(text) = 1", SqlType.BOOLEAN),
    ],
)
def test_boolean_predicates(expr, expected):
    inferred, diags = infer(expr)
    assert inferred is expected
    assert diags == ()


def test_field_types():
    sink = DiagnosticSink()
    inferencer = TypeInferencer(default_registry(), FIELD_TYPES, sink)
    statement = parse("SELECT text FROM t WHERE followers > 1;")
    assert inferencer.infer(statement.where.left) is SqlType.INTEGER
    assert FIELD_TYPES["location"] is SqlType.POINT
    assert FIELD_TYPES["created_at"] is SqlType.FLOAT


def test_unknown_field_reports_tql201_with_hint():
    _inferred, diags = infer("folowers > 1")
    assert [d.code for d in diags] == ["TQL201"]
    assert "followers" in (diags[0].hint or "")
    assert diags[0].payload["name"] == "folowers"


def test_unknown_function_reports_tql202_with_hint():
    _inferred, diags = infer("sentimant(text) = 1")
    assert [d.code for d in diags] == ["TQL202"]
    assert "sentiment" in (diags[0].hint or "")


def test_arity_mismatch_is_tql103_error():
    _inferred, diags = infer("floor(1, 2) = 1")
    assert [d.code for d in diags] == ["TQL103"]
    assert diags[0].severity.value == "error"


def test_optional_arguments_respect_min_args():
    _inferred, diags = infer("substr(text, 2) = 'x'")
    assert diags == ()
    _inferred, diags = infer("substr(text) = 'x'")
    assert [d.code for d in diags] == ["TQL103"]


def test_variadic_accepts_any_arity():
    _inferred, diags = infer("concat(text, loc, lang, '!') = 'x'")
    assert diags == ()


def test_argument_type_mismatch_is_tql104_warning():
    _inferred, diags = infer("lower(followers) = 'x'")
    assert [d.code for d in diags] == ["TQL104"]
    assert diags[0].severity.value == "warning"


def test_arithmetic_on_string_is_tql101_error():
    _inferred, diags = infer("text - 1 > 0")
    assert "TQL101" in [d.code for d in diags]


def test_string_concat_plus_is_allowed():
    statement = parse("SELECT text FROM t WHERE (text + lang) = 'x';")
    sink = DiagnosticSink()
    inferred = TypeInferencer(default_registry(), FIELD_TYPES, sink).infer(
        statement.where.left
    )
    assert inferred is SqlType.STRING
    assert sink.collect() == ()


def test_incompatible_comparison_is_tql102_warning():
    _inferred, diags = infer("text > 5")
    assert [d.code for d in diags] == ["TQL102"]


def test_aggregate_outside_aggregate_context_is_tql203():
    _inferred, diags = infer("count(text) > 1")
    assert "TQL203" in [d.code for d in diags]


def test_aggregate_allowed_in_aggregate_context():
    inferred, diags = infer("count(text) > 1", allow_aggregates=True)
    assert inferred is SqlType.BOOLEAN
    assert diags == ()


def test_nested_aggregate_is_tql203_even_in_aggregate_context():
    _inferred, diags = infer("sum(count(text)) > 1", allow_aggregates=True)
    assert "TQL203" in [d.code for d in diags]


def test_sum_of_string_warns_tql104():
    _inferred, diags = infer("sum(text) > 1", allow_aggregates=True)
    assert "TQL104" in [d.code for d in diags]


def test_min_returns_argument_type():
    statement = parse("SELECT min(followers) FROM t;")
    sink = DiagnosticSink()
    inferencer = TypeInferencer(
        default_registry(), FIELD_TYPES, sink, allow_aggregates=True
    )
    assert inferencer.infer(statement.select[0].expr) is SqlType.INTEGER


def test_function_return_types_feed_outer_expressions():
    # sentiment returns integer → arithmetic on it is clean.
    _inferred, diags = infer("sentiment(text) + 1 > 0")
    assert diags == ()


def test_udf_without_declared_types_is_unchecked():
    registry = default_registry()
    registry.register("mystery", lambda _ctx, *a: a)
    statement = parse("SELECT text FROM t WHERE mystery(1, 'x', loc) = 1;")
    sink = DiagnosticSink()
    inferred = TypeInferencer(registry, FIELD_TYPES, sink).infer(
        statement.where
    )
    assert inferred is SqlType.BOOLEAN
    assert sink.collect() == ()
