"""Golden-file tests: rendered diagnostics for known-bad queries.

Each case pairs a query with ``golden/<name>.txt`` holding the exact
``AnalysisResult.render()`` output (caret snippets, hints, and all).
Regenerate after an intentional change with::

    UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/sql/analysis/test_golden.py
"""

import os
import pathlib

import pytest

from repro.sql.analysis import analyze_sql

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

CASES = [
    (
        "lex_bad_char",
        "SELECT text FROM twitter WHERE text ? 'x';",
    ),
    (
        "syntax_missing_from",
        "SELECT text WHERE text CONTAINS 'a';",
    ),
    (
        "unknown_source",
        "SELECT text FROM twimmer WHERE text CONTAINS 'a';",
    ),
    (
        "unknown_field_typo",
        "SELECT txet FROM twitter WHERE text CONTAINS 'a';",
    ),
    (
        "unknown_function_typo",
        "SELECT sentimant(text) FROM twitter WHERE text CONTAINS 'a';",
    ),
    (
        "aggregate_without_window",
        "SELECT count(*) FROM twitter WHERE text CONTAINS 'a';",
    ),
    (
        "aggregate_in_where",
        "SELECT text FROM twitter WHERE count(*) > 3;",
    ),
    (
        "having_without_aggregates",
        "SELECT text FROM twitter WHERE text CONTAINS 'a' HAVING count(*) > 1;",
    ),
    (
        "star_mixed_with_aggregates",
        "SELECT *, count(*) FROM twitter WHERE text CONTAINS 'a' WINDOW 1 minutes;",
    ),
    (
        "bad_named_bbox",
        "SELECT text FROM twitter WHERE location IN [bounding box for Atlantis];",
    ),
    (
        "bad_regex",
        "SELECT text FROM twitter WHERE text MATCHES '(unclosed';",
    ),
    (
        "arity_mismatch",
        "SELECT floor(followers, 2) FROM twitter WHERE text CONTAINS 'a';",
    ),
    (
        "arithmetic_on_string",
        "SELECT text - 1 FROM twitter WHERE text CONTAINS 'a';",
    ),
    (
        "catastrophic_regex",
        "SELECT text FROM twitter WHERE text CONTAINS 'a' AND text MATCHES '(x+)+y';",
    ),
    (
        "latency_ordering",
        "SELECT text FROM twitter WHERE latitude(loc) > 0 AND text CONTAINS 'a';",
    ),
    (
        "firehose_no_filter",
        "SELECT text FROM twitter;",
    ),
    (
        "constant_predicate",
        "SELECT text FROM twitter WHERE text CONTAINS 'a' AND 1 = 1;",
    ),
    (
        "many_errors_one_pass",
        "SELECT bogs, sentimant(text) FROM twitter "
        "WHERE text MATCHES '(unclosed' ORDER BY text;",
    ),
]


@pytest.mark.parametrize(("name", "sql"), CASES, ids=[c[0] for c in CASES])
def test_golden(name, sql):
    rendered = analyze_sql(sql).render() + "\n"
    path = GOLDEN_DIR / f"{name}.txt"
    if os.environ.get("UPDATE_GOLDEN"):
        path.write_text(rendered, encoding="utf-8")
    expected = path.read_text(encoding="utf-8")
    assert rendered == expected


def test_every_golden_file_has_a_case():
    expected = {f"{name}.txt" for name, _sql in CASES}
    on_disk = {p.name for p in GOLDEN_DIR.glob("*.txt")}
    assert on_disk == expected
