"""Lexer."""

import pytest

from repro.errors import LexError
from repro.sql.lexer import TokenType, tokenize


def kinds(query):
    return [(t.type, t.value) for t in tokenize(query)[:-1]]


def test_keywords_uppercased():
    assert kinds("select from") == [
        (TokenType.KEYWORD, "SELECT"),
        (TokenType.KEYWORD, "FROM"),
    ]


def test_identifiers_preserve_case():
    assert kinds("Twitter") == [(TokenType.IDENT, "Twitter")]


def test_numbers_int_and_float():
    assert kinds("42 3.14 .5") == [
        (TokenType.NUMBER, "42"),
        (TokenType.NUMBER, "3.14"),
        (TokenType.NUMBER, ".5"),
    ]


def test_string_literal():
    assert kinds("'obama'") == [(TokenType.STRING, "obama")]


def test_string_escape_doubled_quote():
    assert kinds("'o''brien'") == [(TokenType.STRING, "o'brien")]


def test_unterminated_string_raises():
    with pytest.raises(LexError):
        tokenize("'open")


def test_multichar_operators():
    assert [v for _t, v in kinds("<= >= <> != ==")] == ["<=", ">=", "<>", "!=", "=="]


def test_single_operators_and_brackets():
    assert [v for _t, v in kinds("( ) [ ] , ; * + - / % . < > =")] == [
        "(", ")", "[", "]", ",", ";", "*", "+", "-", "/", "%", ".", "<", ">", "=",
    ]


def test_line_comment_skipped():
    tokens = kinds("select -- comment here\n text")
    assert tokens == [(TokenType.KEYWORD, "SELECT"), (TokenType.IDENT, "text")]


def test_unexpected_character():
    with pytest.raises(LexError) as excinfo:
        tokenize("select @")
    assert excinfo.value.position == 7


def test_eof_token_present():
    tokens = tokenize("select")
    assert tokens[-1].type is TokenType.EOF


def test_positions_recorded():
    tokens = tokenize("select text")
    assert tokens[0].position == 0
    assert tokens[1].position == 7


def test_is_keyword_and_is_op_helpers():
    select, star = tokenize("select *")[:2]
    assert select.is_keyword("SELECT", "FROM")
    assert not select.is_keyword("FROM")
    assert star.is_op("*")
    assert not star.is_op("+")


def test_units_are_keywords():
    values = [v for t, v in kinds("3 hours 2 minute") if t is TokenType.KEYWORD]
    assert values == ["HOURS", "MINUTE"]
