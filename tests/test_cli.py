"""The tweeql command-line demo."""

import pytest

from repro.cli import (
    EXAMPLE_QUERIES,
    build_scenarios,
    main,
    make_parser,
    run_query,
)


def test_build_scenarios_names():
    scenarios = build_scenarios("soccer", seed=3, population_size=300)
    assert len(scenarios) == 1
    assert scenarios[0].name == "soccer"
    with pytest.raises(SystemExit):
        build_scenarios("bogus", seed=3, population_size=300)


def test_query_subcommand_prints_rows(capsys):
    code = main(
        [
            "--scenario", "soccer", "--population", "400", "--seed", "3",
            "query", "--sql",
            "SELECT text FROM twitter WHERE text contains 'tevez';",
            "--rows", "3",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert out.count("text=") == 3
    assert "stats" in out


def test_query_with_fault_plan_and_retries(tmp_path, capsys):
    from repro.engine.resilience import FaultPlan, ServiceFaultModel, StreamDrop

    plan = FaultPlan(
        seed=7,
        services={"*": ServiceFaultModel(failure_rate=0.3, max_burst=2)},
        stream_drops=(StreamDrop(after_delivered=10, gap=5),),
    )
    path = tmp_path / "plan.json"
    plan.to_file(str(path))
    code = main(
        [
            "--scenario", "soccer", "--population", "400", "--seed", "3",
            "--retries", "3", "--deadline-ms", "4000",
            "--fault-plan", str(path),
            "query", "--sql",
            "SELECT latitude(loc) AS lat FROM twitter "
            "WHERE text contains 'tevez';",
            "--rows", "5",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert out.count("lat=") == 5


def test_resilience_parser_defaults():
    args = make_parser().parse_args(["repl"])
    assert args.retries == 0
    assert args.deadline_ms is None
    assert args.fault_plan is None
    assert args.no_stream_reconnect is False


def test_query_subcommand_reports_errors(capsys):
    code = main(
        [
            "--scenario", "soccer", "--population", "300", "--seed", "3",
            "query", "--sql", "SELECT COUNT(*) FROM twitter;",
        ]
    )
    assert code == 1
    assert "error" in capsys.readouterr().err


def test_twitinfo_subcommand_text_dashboard(capsys):
    code = main(
        [
            "--scenario", "soccer", "--population", "500", "--seed", "3",
            "twitinfo",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "TwitInfo" in out
    assert "Timeline" in out


def test_twitinfo_html_output(tmp_path, capsys):
    target = str(tmp_path / "dash.html")
    code = main(
        [
            "--scenario", "soccer", "--population", "500", "--seed", "3",
            "twitinfo", "--html", target,
        ]
    )
    assert code == 0
    content = open(target, encoding="utf-8").read()
    assert content.startswith("<!DOCTYPE html>")
    assert "Peaks" in content


def test_example_queries_all_parse():
    from repro.sql import parse

    for _title, sql in EXAMPLE_QUERIES:
        parse(sql)


def test_example_queries_all_run(soccer_session):
    for _title, sql in EXAMPLE_QUERIES:
        handle = soccer_session.query(sql)
        handle.fetch(2)
        handle.close()


def test_parser_defaults():
    parser = make_parser()
    args = parser.parse_args(["repl"])
    assert args.scenario == "soccer"
    assert args.command == "repl"


def test_run_query_row_budget(soccer_session, capsys):
    printed = run_query(
        soccer_session,
        "SELECT text FROM twitter WHERE text contains 'soccer';",
        rows=5,
    )
    assert printed == 5
