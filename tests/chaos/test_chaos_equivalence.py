"""The tentpole property: faults + retries are invisible in the output.

A retry budget covering the fault plan's worst burst (``retries >=
max_burst``) plus auto-reconnecting streams means every service key
eventually resolves to its true value and every gap tweet is recovered —
so a faulted run must emit **exactly** the rows of the fault-free
baseline, at every batch size and worker count. Faults are keyed on
request content, never arrival order, which is what makes the property
hold across execution schedules.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import EngineConfig
from repro.engine.resilience import FaultPlan, ServiceFaultModel, StreamDrop

pytestmark = pytest.mark.chaos

#: The acceptance grid: row-at-a-time and large batches, serial and
#: sharded.
GRID = [(1, 1), (1, 4), (256, 1), (256, 4)]


def faulted_config(plan: FaultPlan, batch_size: int, workers: int) -> EngineConfig:
    return EngineConfig(
        retries=3,  # covers every plan's max_burst (<= 2 below)
        fault_plan=plan,
        batch_size=batch_size,
        workers=workers,
    )


@pytest.fixture(scope="module")
def baseline(small_chatter):
    """Fault-free reference rows, computed once."""
    from repro import TweeQL

    from .conftest import CHAOS_SQL, SEED

    session = TweeQL.for_scenarios(small_chatter, seed=SEED)
    handle = session.query(CHAOS_SQL)
    rows = [
        {k: v for k, v in row.items() if not k.startswith("__")}
        for row in handle
    ]
    handle.close()
    assert rows, "baseline produced no rows — the scenario is broken"
    return rows


@pytest.mark.parametrize("batch_size,workers", GRID)
def test_fixed_plan_equivalence_across_the_grid(
    run_rows, fault_plan, baseline, batch_size, workers
):
    rows, session = run_rows(
        config=faulted_config(fault_plan, batch_size, workers)
    )
    assert rows == baseline
    # The run was actually exercised: faults were injected and retried.
    injector = session.geocode_service.fault_injector
    assert any(kind == "fail" for _k, _a, kind in injector.trace)
    resilient = session.geocode_resilient
    assert resilient.resilience.recovered > 0
    assert resilient.resilience.giveups == 0


@pytest.mark.parametrize("latency_mode", ["blocking", "batched", "async"])
def test_fixed_plan_equivalence_across_latency_modes(
    run_rows, fault_plan, baseline, latency_mode
):
    config = EngineConfig(
        retries=3, fault_plan=fault_plan, latency_mode=latency_mode
    )
    rows, _session = run_rows(config=config)
    assert rows == baseline


def test_without_retries_faults_degrade_to_null(run_rows, fault_plan):
    """The contrast case: no retry budget means injected failures surface
    as NULLs (graceful degradation), so the output *differs* from the
    baseline — proving the equivalence above is the retry layer's doing."""
    degraded, session = run_rows(
        config=EngineConfig(retries=0, fault_plan=fault_plan)
    )
    assert any(kind == "fail" for _k, _a, kind in
               session.geocode_service.fault_injector.trace)
    null_lats = sum(1 for row in degraded if row["lat"] is None)
    clean, _ = run_rows(config=None)
    baseline_nulls = sum(1 for row in clean if row["lat"] is None)
    assert null_lats > baseline_nulls


plans = st.builds(
    FaultPlan,
    seed=st.integers(0, 2**16),
    services=st.fixed_dictionaries(
        {
            "*": st.builds(
                ServiceFaultModel,
                failure_rate=st.floats(0.05, 0.3),
                max_burst=st.integers(1, 2),
                retry_after_seconds=st.sampled_from([None, 0.5]),
                latency_spike_rate=st.floats(0.0, 0.2),
            )
        }
    ),
    stream_drops=st.lists(
        st.builds(
            StreamDrop,
            after_delivered=st.integers(0, 300),
            gap=st.integers(0, 25),
        ),
        min_size=1,
        max_size=3,
    ).map(tuple),
)


@pytest.mark.slow
@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(plan=plans, grid_point=st.sampled_from(GRID))
def test_generated_plans_preserve_the_baseline(
    run_rows, baseline, plan, grid_point
):
    batch_size, workers = grid_point
    rows, _session = run_rows(
        config=faulted_config(plan, batch_size, workers)
    )
    assert rows == baseline
