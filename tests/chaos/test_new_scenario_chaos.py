"""Chaos equivalence for the fidelity harness's high-stress scenarios.

The same property the core chaos suite pins, swept over the three new
generators (election night, breaking-news cascade, bot flood): a run
under a deterministic fault plan with a covering retry budget must emit
**exactly** the rows of the fault-free baseline — at every point of the
batch {1, 256} × workers {1, 4} acceptance grid.
"""

from __future__ import annotations

import pytest

from repro import EngineConfig, TweeQL
from repro.engine.resilience import FaultPlan, ServiceFaultModel, StreamDrop

pytestmark = pytest.mark.chaos

SEED = 11
GRID = [(1, 1), (1, 4), (256, 1), (256, 4)]

#: Scenario fixture name → the query its chaos sweep runs. Keyword
#: filters keep the geocoded row counts in the hundreds.
SCENARIO_SQL = {
    "election_small": (
        "SELECT sentiment(text) AS s, latitude(loc) AS lat, text "
        "FROM twitter WHERE text contains 'precinct';"
    ),
    "cascade_small": (
        "SELECT sentiment(text) AS s, latitude(loc) AS lat, text "
        "FROM twitter WHERE text contains 'evacuation';"
    ),
    "botflood_small": (
        "SELECT sentiment(text) AS s, latitude(loc) AS lat, text "
        "FROM twitter WHERE text contains 'giveaway';"
    ),
}


def fault_plan() -> FaultPlan:
    return FaultPlan(
        seed=307,
        services={
            "*": ServiceFaultModel(
                failure_rate=0.2,
                max_burst=2,
                retry_after_seconds=0.4,
                latency_spike_rate=0.1,
            )
        },
        stream_drops=(
            StreamDrop(after_delivered=50, gap=10),
            StreamDrop(after_delivered=250, gap=5),
        ),
    )


def run_rows(scenario, config=None, sql=None):
    session = TweeQL.for_scenarios(scenario, config=config, seed=SEED)
    handle = session.query(sql)
    rows = [
        {k: v for k, v in row.items() if not k.startswith("__")}
        for row in handle
    ]
    handle.close()
    return rows, session


@pytest.fixture(
    scope="module", params=sorted(SCENARIO_SQL), ids=lambda name: name.removesuffix("_small")
)
def scenario_case(request):
    """(scenario, sql, fault-free baseline rows) per new generator."""
    scenario = request.getfixturevalue(request.param)
    sql = SCENARIO_SQL[request.param]
    baseline, _session = run_rows(scenario, sql=sql)
    assert baseline, f"{request.param} baseline produced no rows"
    return scenario, sql, baseline


@pytest.mark.parametrize("batch_size,workers", GRID)
def test_faults_invisible_across_the_grid(scenario_case, batch_size, workers):
    scenario, sql, baseline = scenario_case
    config = EngineConfig(
        retries=3,
        fault_plan=fault_plan(),
        batch_size=batch_size,
        workers=workers,
    )
    rows, session = run_rows(scenario, config=config, sql=sql)
    assert rows == baseline
    # The sweep actually exercised the fault plan, not a quiet run.
    injector = session.geocode_service.fault_injector
    assert any(kind == "fail" for _k, _a, kind in injector.trace)
    assert session.geocode_resilient.resilience.giveups == 0
