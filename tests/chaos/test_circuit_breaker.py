"""Circuit breaker state machine, on the virtual clock."""

from __future__ import annotations

import pytest

from repro.clock import VirtualClock
from repro.engine.resilience import (
    CircuitBreaker,
    ResilientService,
    RetryPolicy,
)
from repro.errors import CircuitOpenError, ServiceError

pytestmark = pytest.mark.chaos


def make_breaker(clock, threshold=3, reset=10.0):
    return CircuitBreaker(
        clock,
        failure_threshold=threshold,
        reset_timeout_seconds=reset,
        name="svc",
    )


def test_opens_after_consecutive_failures():
    clock = VirtualClock(start=0.0)
    breaker = make_breaker(clock, threshold=3)
    for _ in range(2):
        breaker.record_failure()
    assert breaker.state == "closed"
    breaker.record_failure()
    assert breaker.state == "open"
    assert breaker.stats.opens == 1


def test_success_resets_the_consecutive_count():
    clock = VirtualClock(start=0.0)
    breaker = make_breaker(clock, threshold=3)
    for _ in range(2):
        breaker.record_failure()
    breaker.record_success()
    for _ in range(2):
        breaker.record_failure()
    assert breaker.state == "closed"


def test_open_short_circuits_with_retry_after():
    clock = VirtualClock(start=0.0)
    breaker = make_breaker(clock, threshold=1, reset=10.0)
    breaker.record_failure()
    assert breaker.state == "open"
    clock.advance(4.0)
    with pytest.raises(CircuitOpenError) as info:
        breaker.allow()
    # retry_after points at the half-open probe window.
    assert info.value.retry_after == pytest.approx(6.0)
    assert breaker.stats.short_circuits == 1


def test_half_open_probe_success_closes():
    clock = VirtualClock(start=0.0)
    breaker = make_breaker(clock, threshold=1, reset=10.0)
    breaker.record_failure()
    clock.advance(10.0)
    breaker.allow()  # transitions to half-open, lets the probe through
    assert breaker.state == "half_open"
    assert breaker.stats.probes == 1
    breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.stats.closes == 1


def test_half_open_probe_failure_reopens():
    clock = VirtualClock(start=0.0)
    breaker = make_breaker(clock, threshold=3, reset=10.0)
    for _ in range(3):
        breaker.record_failure()
    clock.advance(10.0)
    breaker.allow()
    assert breaker.state == "half_open"
    breaker.record_failure()  # one failure in half-open is enough
    assert breaker.state == "open"
    assert breaker.stats.opens == 2
    # The fresh open period starts now: still short-circuiting at +5s.
    clock.advance(5.0)
    with pytest.raises(CircuitOpenError):
        breaker.allow()


def test_resilient_service_waits_out_the_open_circuit(flaky_factory):
    """The retry loop treats a short-circuit's retry_after as backoff, so
    a call arriving while the circuit is open sleeps to the probe window
    and recovers — no user-visible failure."""
    clock = VirtualClock(start=0.0)
    service = flaky_factory(clock, script=[ServiceError("down")] * 2)
    breaker = make_breaker(clock, threshold=2, reset=5.0)
    resilient = ResilientService(
        service,
        RetryPolicy(max_retries=3, backoff_base_seconds=0.1, jitter=False),
        breaker=breaker,
    )
    # Two failures open the circuit; the third attempt short-circuits and
    # waits reset-time; the probe then succeeds and closes it.
    assert resilient.request("k") == "ok"
    assert breaker.stats.opens == 1
    assert breaker.stats.short_circuits >= 1
    assert breaker.stats.closes == 1
    assert breaker.state == "closed"
    # The service itself saw only 3 attempts (none while open).
    assert len(service.attempt_times) == 3


def test_open_circuit_fails_fast_without_budget(flaky_factory):
    clock = VirtualClock(start=0.0)
    service = flaky_factory(clock, script=[ServiceError("down")] * 10)
    breaker = make_breaker(clock, threshold=1, reset=30.0)
    resilient = ResilientService(
        service, RetryPolicy(max_retries=0), breaker=breaker
    )
    with pytest.raises(ServiceError):
        resilient.request("a")
    assert breaker.state == "open"
    before = len(service.attempt_times)
    with pytest.raises(CircuitOpenError):
        resilient.request("b")
    # The open circuit never touched the service and paid no latency.
    assert len(service.attempt_times) == before
    assert breaker.stats.short_circuits == 1


def test_failed_probe_reopens_through_the_retry_loop(flaky_factory):
    clock = VirtualClock(start=0.0)
    service = flaky_factory(clock, script=[ServiceError("down")] * 5)
    breaker = make_breaker(clock, threshold=1, reset=5.0)
    resilient = ResilientService(
        service,
        RetryPolicy(max_retries=3, backoff_base_seconds=0.1, jitter=False),
        breaker=breaker,
    )
    with pytest.raises(CircuitOpenError):
        resilient.request("k")
    # Attempt 1 fails and opens; the short-circuit's retry_after carries
    # the loop to the probe window; the probe fails and re-opens; the
    # remaining budget short-circuits without touching the service.
    assert breaker.stats.opens == 2
    assert breaker.stats.probes == 1
    assert len(service.attempt_times) == 2
    assert breaker.state == "open"


def test_async_retry_chain_respects_the_breaker(flaky_factory):
    clock = VirtualClock(start=0.0)
    service = flaky_factory(clock, script=[ServiceError("down")] * 2)
    breaker = make_breaker(clock, threshold=2, reset=5.0)
    resilient = ResilientService(
        service,
        RetryPolicy(max_retries=3, backoff_base_seconds=0.1, jitter=False),
        breaker=breaker,
    )
    outcomes: list[tuple] = []
    resilient.request_async("k", lambda v, e: outcomes.append((v, e)))
    clock.flush()
    assert outcomes == [("ok", None)]
    assert breaker.stats.opens == 1
    assert breaker.state == "closed"


def test_validation():
    clock = VirtualClock(start=0.0)
    with pytest.raises(ValueError):
        CircuitBreaker(clock, failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(clock, reset_timeout_seconds=0.0)
