"""Stream disconnects, reconnection, and gap accounting."""

from __future__ import annotations

import pytest

from repro.engine.resilience import FaultPlan, StreamDrop
from repro.twitter.stream import Firehose, StreamConnection, StreamingAPI

pytestmark = pytest.mark.chaos


def connect(tweets, drops=(), auto_reconnect=True, delivery_ratio=1.0):
    return StreamConnection(
        tweets,
        predicate=lambda _t: True,
        delivery_ratio=delivery_ratio,
        seed=5,
        clock=None,
        description="test",
        drops=drops,
        auto_reconnect=auto_reconnect,
    )


@pytest.fixture(scope="module")
def tweets(small_chatter):
    return small_chatter.tweets


def test_no_drops_accounts_nothing(tweets):
    conn = connect(tweets)
    delivered = [t.tweet_id for t in conn]
    assert len(delivered) == len(tweets)
    assert conn.stats.reconnects == 0
    assert conn.stats.gap_tweets == 0


def test_reconnect_recovers_the_gap(tweets):
    baseline = [t.tweet_id for t in connect(tweets)]
    conn = connect(tweets, drops=(StreamDrop(after_delivered=20, gap=7),))
    delivered = [t.tweet_id for t in conn]
    # Cursor resume: the gap tweets are re-fetched, output is identical.
    assert delivered == baseline
    assert conn.stats.reconnects == 1
    assert conn.stats.gap_tweets == 7


def test_no_reconnect_loses_the_gap(tweets):
    baseline = [t.tweet_id for t in connect(tweets)]
    conn = connect(
        tweets,
        drops=(StreamDrop(after_delivered=20, gap=7),),
        auto_reconnect=False,
    )
    delivered = [t.tweet_id for t in conn]
    # Exactly the 7 tweets after the 20th are missing.
    assert delivered == baseline[:20] + baseline[27:]
    assert conn.stats.reconnects == 0
    assert conn.stats.gap_tweets == 7
    assert conn.stats.dropped == 7


def test_multiple_drops_accumulate(tweets):
    baseline = [t.tweet_id for t in connect(tweets)]
    drops = (
        StreamDrop(after_delivered=10, gap=3),
        StreamDrop(after_delivered=50, gap=5),
    )
    conn = connect(tweets, drops=drops)
    assert [t.tweet_id for t in conn] == baseline
    assert conn.stats.reconnects == 2
    assert conn.stats.gap_tweets == 8


def test_lossy_stream_draws_are_unchanged_by_drops(tweets):
    """The delivery-ratio RNG consumes one draw per match regardless of
    drops, so loss decisions are identical with and without a fault plan —
    the property the chaos-equivalence suite relies on."""
    baseline = [t.tweet_id for t in connect(tweets, delivery_ratio=0.9)]
    conn = connect(
        tweets,
        drops=(StreamDrop(after_delivered=15, gap=10),),
        delivery_ratio=0.9,
    )
    assert [t.tweet_id for t in conn] == baseline


def test_streaming_api_applies_the_plan_to_every_connection(tweets):
    plan = FaultPlan(
        seed=1, stream_drops=(StreamDrop(after_delivered=5, gap=2),)
    )
    api = StreamingAPI(
        Firehose(list(tweets)), delivery_ratio=1.0, fault_plan=plan
    )
    conn = api.unfiltered()
    assert len(list(conn)) == len(tweets)
    assert conn.stats.reconnects == 1
    assert conn.stats.gap_tweets == 2
    second = api.unfiltered()
    list(second)
    assert second.stats.reconnects == 1


def test_streaming_api_without_reconnect_drops_the_gap(tweets):
    plan = FaultPlan(
        seed=1, stream_drops=(StreamDrop(after_delivered=5, gap=2),)
    )
    api = StreamingAPI(
        Firehose(list(tweets)),
        delivery_ratio=1.0,
        fault_plan=plan,
        auto_reconnect=False,
    )
    conn = api.unfiltered()
    assert len(list(conn)) == len(tweets) - 2
    assert conn.stats.reconnects == 0
    assert conn.stats.dropped == 2


def test_stream_drop_validation():
    with pytest.raises(ValueError):
        StreamDrop(after_delivered=-1)
    with pytest.raises(ValueError):
        StreamDrop(after_delivered=0, gap=-2)
