"""Retry backoff timing, pinned against the virtual clock.

These tests disable jitter so the exact wait sequence is asserted, and
use a scripted :class:`FlakyService` so every attempt's timestamp is
recorded — the regression pin for ``ServiceError.retry_after`` handling.
"""

from __future__ import annotations

import random

import pytest

from repro.clock import VirtualClock
from repro.engine.resilience import (
    ResilientService,
    RetryPolicy,
    ServiceFaultModel,
)
from repro.errors import ServiceError

pytestmark = pytest.mark.chaos


def test_backoff_doubles_and_caps():
    policy = RetryPolicy(
        max_retries=6,
        backoff_base_seconds=0.1,
        backoff_cap_seconds=1.0,
        jitter=False,
    )
    rng = random.Random(0)
    waits = [policy.backoff_seconds(a, rng) for a in range(1, 7)]
    assert waits == [0.1, 0.2, 0.4, 0.8, 1.0, 1.0]


def test_full_jitter_stays_within_cap():
    policy = RetryPolicy(backoff_base_seconds=0.1, backoff_cap_seconds=5.0)
    rng = random.Random(7)
    for attempt in range(1, 5):
        cap = min(5.0, 0.1 * 2 ** (attempt - 1))
        for _ in range(50):
            wait = policy.backoff_seconds(attempt, rng)
            assert 0.0 <= wait <= cap


def test_retry_after_floors_the_wait():
    policy = RetryPolicy(backoff_base_seconds=0.1, jitter=False)
    rng = random.Random(0)
    # Computed backoff for attempt 1 is 0.1; the server said 1.5.
    assert policy.backoff_seconds(1, rng, retry_after=1.5) == 1.5
    # When the computed backoff exceeds retry_after, backoff wins.
    assert policy.backoff_seconds(5, rng, retry_after=0.2) == 1.6


def test_attempt_is_one_based():
    policy = RetryPolicy()
    with pytest.raises(ValueError):
        policy.backoff_seconds(0, random.Random(0))


def test_pinned_wait_sequence_without_retry_after(flaky_factory):
    """Regression pin: attempt timestamps follow base·2^k exactly."""
    clock = VirtualClock(start=0.0)
    service = flaky_factory(
        clock,
        script=[ServiceError("boom"), ServiceError("boom"), ServiceError("boom")],
    )
    resilient = ResilientService(
        service,
        RetryPolicy(
            max_retries=3,
            backoff_base_seconds=0.1,
            backoff_cap_seconds=5.0,
            jitter=False,
        ),
    )
    assert resilient.request("k") == "ok"
    # Attempts at t=0, then after waits 0.1, 0.2, 0.4.
    assert service.attempt_times == pytest.approx([0.0, 0.1, 0.3, 0.7])
    assert resilient.resilience.retries == 3
    assert resilient.resilience.recovered == 1
    assert resilient.resilience.backoff_seconds == pytest.approx(0.7)


def test_pinned_wait_sequence_honors_retry_after(flaky_factory):
    """Regression pin for the satellite: ``retry_after`` floors each wait."""
    clock = VirtualClock(start=0.0)
    service = flaky_factory(
        clock,
        script=[
            ServiceError("busy", retry_after=1.5),
            ServiceError("busy", retry_after=0.05),
        ],
    )
    resilient = ResilientService(
        service,
        RetryPolicy(
            max_retries=3,
            backoff_base_seconds=0.1,
            backoff_cap_seconds=5.0,
            jitter=False,
        ),
    )
    assert resilient.request("k") == "ok"
    # First wait: max(0.1, retry_after=1.5) = 1.5.
    # Second wait: max(0.2, retry_after=0.05) = 0.2.
    assert service.attempt_times == pytest.approx([0.0, 1.5, 1.7])
    assert resilient.resilience.backoff_seconds == pytest.approx(1.7)


def test_retry_budget_exhaustion_raises_last_error(flaky_factory):
    clock = VirtualClock(start=0.0)
    errors = [ServiceError(f"fail {i}") for i in range(4)]
    service = flaky_factory(clock, script=list(errors))
    resilient = ResilientService(
        service, RetryPolicy(max_retries=2, jitter=False)
    )
    with pytest.raises(ServiceError, match="fail 2"):
        resilient.request("k")
    # 1 initial + 2 retries = 3 attempts; the 4th scripted error unused.
    assert len(service.attempt_times) == 3
    assert resilient.resilience.giveups == 1
    assert resilient.resilience.recovered == 0


def test_deadline_stops_retrying_before_budget(flaky_factory):
    clock = VirtualClock(start=0.0)
    service = flaky_factory(
        clock, script=[ServiceError("slow")] * 10, latency=1.0
    )
    resilient = ResilientService(
        service,
        RetryPolicy(
            max_retries=10,
            deadline_seconds=2.5,
            backoff_base_seconds=0.5,
            jitter=False,
        ),
    )
    with pytest.raises(ServiceError):
        resilient.request("k")
    # t=0 attempt (1s latency), wait 0.5 → t=1.5 attempt (1s latency) →
    # t=2.5; next wait 1.0 would end at 3.5 > deadline 2.5: give up.
    assert len(service.attempt_times) == 2
    assert resilient.resilience.deadline_giveups == 1


def test_zero_retries_fails_fast(flaky_factory):
    clock = VirtualClock(start=0.0)
    service = flaky_factory(clock, script=[ServiceError("once")])
    resilient = ResilientService(service, RetryPolicy(max_retries=0))
    with pytest.raises(ServiceError):
        resilient.request("k")
    assert len(service.attempt_times) == 1
    assert clock.now == 0.0  # no backoff was paid


def test_injected_retry_after_reaches_the_backoff():
    """A FaultPlan model's retry_after rides the injected ServiceError."""
    from repro.engine.resilience import FaultPlan

    plan = FaultPlan(
        seed=3,
        services={"svc": ServiceFaultModel(failure_rate=1.0, max_burst=1,
                                           retry_after_seconds=2.0)},
    )
    injector = plan.injector_for("svc")
    decision = injector.draw("key")
    assert decision.error is not None
    assert decision.error.retry_after == 2.0


def test_batch_retry_heals_failed_items(flaky_factory):
    clock = VirtualClock(start=0.0)
    service = flaky_factory(
        clock,
        script=["a-ok", ServiceError("b transient"), "b-ok"],
    )
    resilient = ResilientService(
        service, RetryPolicy(max_retries=2, jitter=False)
    )
    assert resilient.request_batch(["a", "b"]) == ["a-ok", "b-ok"]
    assert resilient.resilience.retries == 1
    assert resilient.resilience.recovered == 1


def test_batch_budget_exhaustion_keeps_error_entries(flaky_factory):
    clock = VirtualClock(start=0.0)
    service = flaky_factory(
        clock, script=["a-ok"] + [ServiceError("b down")] * 5
    )
    resilient = ResilientService(
        service, RetryPolicy(max_retries=1, jitter=False)
    )
    results = resilient.request_batch(["a", "b"])
    assert results[0] == "a-ok"
    assert isinstance(results[1], ServiceError)
    assert resilient.resilience.giveups == 1
