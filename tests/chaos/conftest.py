"""Fixtures for the chaos harness.

The suite drives the engine through deterministic
:class:`~repro.engine.resilience.FaultPlan` schedules and asserts that a
retry-enabled run is *indistinguishable by output* from a fault-free one.
Everything runs on the virtual clock — no sleeping, no flakiness.
"""

from __future__ import annotations

import pytest

from repro import EngineConfig, TweeQL
from repro.clock import VirtualClock
from repro.engine.resilience import FaultPlan, ServiceFaultModel, StreamDrop
from repro.errors import ServiceError
from repro.twitter.workloads import background_chatter

SEED = 11

#: The query every equivalence check runs: a local UDF plus a
#: high-latency geocode per row, over the whole (small) stream.
CHAOS_SQL = (
    "SELECT sentiment(text) AS s, latitude(loc) AS lat, text "
    "FROM twitter;"
)


@pytest.fixture(scope="session")
def small_chatter(population):
    """A few hundred chatter tweets — small enough for a test grid."""
    return background_chatter(
        seed=SEED, population=population, duration=240.0, rate=2.0
    )


@pytest.fixture()
def fault_plan():
    """The suite's canonical deterministic fault schedule.

    Wildcard service faults (every service misbehaves the same way) plus
    two stream disconnects, one with a recoverable gap.
    """
    return FaultPlan(
        seed=101,
        services={
            "*": ServiceFaultModel(
                failure_rate=0.25,
                max_burst=2,
                retry_after_seconds=0.4,
                latency_spike_rate=0.1,
                latency_multiplier=4.0,
            )
        },
        stream_drops=(StreamDrop(after_delivered=40, gap=15), StreamDrop(after_delivered=200, gap=5)),
    )


@pytest.fixture()
def run_rows(small_chatter):
    """Run ``CHAOS_SQL`` under a config; return (clean rows, session)."""

    def run(config: EngineConfig | None = None, sql: str = CHAOS_SQL):
        session = TweeQL.for_scenarios(small_chatter, config=config, seed=SEED)
        handle = session.query(sql)
        rows = [
            {k: v for k, v in row.items() if not k.startswith("__")}
            for row in handle
        ]
        handle.close()
        return rows, session

    return run


class FlakyService:
    """A minimal scripted service for pinning retry/breaker behavior.

    ``script`` is a list of entries consumed one per attempt: an Exception
    instance to raise, or any other value to return. When the script runs
    out, further attempts return ``fallback``. Records the virtual time of
    every attempt in ``attempt_times`` so tests can pin exact backoff
    schedules.
    """

    def __init__(
        self,
        clock: VirtualClock,
        script: list | None = None,
        fallback: str = "ok",
        name: str = "flaky",
        latency: float = 0.0,
    ) -> None:
        self.name = name
        self._clock = clock
        self.script = list(script or [])
        self.fallback = fallback
        self.latency = latency
        self.attempt_times: list[float] = []
        self.max_batch_size = 25
        self.stats = None

    @property
    def clock(self) -> VirtualClock:
        return self._clock

    def _next(self, item):
        self.attempt_times.append(self._clock.now)
        if self.latency:
            self._clock.advance(self.latency)
        if self.script:
            outcome = self.script.pop(0)
            if isinstance(outcome, Exception):
                raise outcome
            return outcome
        return self.fallback

    def request(self, item):
        return self._next(item)

    def request_batch(self, items):
        results = []
        for item in items:
            try:
                results.append(self._next(item))
            except ServiceError as exc:
                results.append(exc)
        return results

    def request_async(self, item, callback):
        done_at = self._clock.now + max(self.latency, 1e-9)

        def fire() -> None:
            self.attempt_times.append(self._clock.now)
            if self.script:
                outcome = self.script.pop(0)
                if isinstance(outcome, Exception):
                    callback(None, outcome)
                    return
                callback(outcome, None)
                return
            callback(self.fallback, None)

        self._clock.call_at(done_at, fire)
        return done_at


@pytest.fixture()
def flaky_factory():
    def build(clock: VirtualClock, script=None, **kwargs) -> FlakyService:
        return FlakyService(clock, script=script, **kwargs)

    return build
