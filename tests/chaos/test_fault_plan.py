"""FaultPlan determinism, serialization, and the injected-failure trace."""

from __future__ import annotations

import pytest

from repro import EngineConfig
from repro.engine.resilience import (
    FaultPlan,
    ServiceFaultModel,
    StreamDrop,
)

pytestmark = pytest.mark.chaos

PLAN = FaultPlan(
    seed=42,
    services={
        "geocoder": ServiceFaultModel(failure_rate=0.5, max_burst=2),
        "*": ServiceFaultModel(failure_rate=0.1, max_burst=1,
                               latency_spike_rate=0.2),
    },
    stream_drops=(StreamDrop(after_delivered=10, gap=4),),
)


def test_faults_are_keyed_on_content_not_order():
    keys = [f"loc-{i}" for i in range(200)]
    forward = [PLAN.failing_attempts("geocoder", k) for k in keys]
    backward = [PLAN.failing_attempts("geocoder", k) for k in reversed(keys)]
    assert forward == list(reversed(backward))
    # A reasonable share of keys actually fail, and bursts stay bounded.
    failing = [n for n in forward if n > 0]
    assert 0.3 * len(keys) < len(failing) < 0.7 * len(keys)
    assert all(1 <= n <= 2 for n in failing)


def test_same_seed_same_schedule_different_seed_differs():
    a = FaultPlan(seed=1, services={"*": ServiceFaultModel(failure_rate=0.3)})
    b = FaultPlan(seed=1, services={"*": ServiceFaultModel(failure_rate=0.3)})
    c = FaultPlan(seed=2, services={"*": ServiceFaultModel(failure_rate=0.3)})
    keys = [f"k{i}" for i in range(100)]
    sched_a = [a.failing_attempts("svc", k) for k in keys]
    sched_b = [b.failing_attempts("svc", k) for k in keys]
    sched_c = [c.failing_attempts("svc", k) for k in keys]
    assert sched_a == sched_b
    assert sched_a != sched_c


def test_wildcard_applies_only_without_specific_entry():
    assert PLAN.model_for("geocoder").failure_rate == 0.5
    assert PLAN.model_for("opencalais").failure_rate == 0.1
    empty = FaultPlan(seed=1)
    assert empty.model_for("geocoder") is None
    assert empty.injector_for("geocoder") is None


def test_latency_spikes_are_deterministic_per_key():
    keys = [f"k{i}" for i in range(300)]
    mults = [PLAN.latency_multiplier("opencalais", k) for k in keys]
    assert set(mults) <= {1.0, 5.0}
    spiked = [m for m in mults if m != 1.0]
    assert 0.1 * len(keys) < len(spiked) < 0.35 * len(keys)
    assert mults == [PLAN.latency_multiplier("opencalais", k) for k in keys]


def test_serialization_round_trips(tmp_path):
    path = tmp_path / "plan.json"
    PLAN.to_file(str(path))
    loaded = FaultPlan.from_file(str(path))
    assert loaded == PLAN
    assert loaded.as_dict() == PLAN.as_dict()


def test_model_validation():
    with pytest.raises(ValueError):
        ServiceFaultModel(failure_rate=1.5)
    with pytest.raises(ValueError):
        ServiceFaultModel(max_burst=0)
    with pytest.raises(ValueError):
        ServiceFaultModel(latency_spike_rate=-0.1)


def test_injector_bursts_heal_after_failing_attempts():
    plan = FaultPlan(
        seed=9,
        services={"svc": ServiceFaultModel(failure_rate=1.0, max_burst=3)},
    )
    injector = plan.injector_for("svc")
    expected_failures = plan.failing_attempts("svc", "key")
    assert expected_failures >= 1
    outcomes = [injector.draw("key").error is not None for _ in range(6)]
    assert outcomes == [True] * expected_failures + [False] * (
        6 - expected_failures
    )


def test_same_plan_reproduces_the_same_failure_trace(run_rows, fault_plan):
    """Running an identical config twice injects identical anomalies, in
    the same order — the acceptance criterion for replayable chaos."""
    config = EngineConfig(retries=3, fault_plan=fault_plan)
    traces = []
    for _ in range(2):
        _rows, session = run_rows(config=config)
        injector = session.geocode_service.fault_injector
        assert injector is not None
        traces.append(list(injector.trace))
    assert traces[0], "the plan injected no faults — nothing was tested"
    assert traces[0] == traces[1]


def test_service_stats_surface_resilience_and_breaker(run_rows, fault_plan):
    config = EngineConfig(retries=3, fault_plan=fault_plan)
    session = None
    session_rows, session = run_rows(config=config)
    handle = session.query("SELECT latitude(loc) AS lat FROM twitter;")
    handle.fetch(50)
    stats = handle.service_stats
    handle.close()
    assert "resilience" in stats["geocode"]
    assert "breaker" in stats["geocode"]
    assert stats["geocode"]["breaker"]["state"] == "closed"
    resilience = stats["geocode"]["resilience"]
    assert resilience["calls"] > 0
    # Faults were injected and ridden out.
    assert resilience["retries"] > 0
    assert resilience["giveups"] == 0
