"""Engine-health persistence and the hybrid tier's TwitInfo payoff.

Tracking an event on a storage-backed session leaves per-window metrics
snapshots in the historical store (served back on ``/health.json``), and
re-opening that store with ``backfill=True`` renders a populated
timeline — peaks included — before the first live tweet arrives.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro import EngineConfig, TweeQL
from repro.twitinfo import TwitInfoApp
from repro.twitinfo.server import TwitInfoServer


def _storage_session(soccer, path, **config_kwargs):
    return TweeQL.for_scenarios(
        soccer,
        config=EngineConfig(storage_path=path, **config_kwargs),
        delivery_ratio=1.0,
    )


@pytest.fixture(scope="module")
def tracked_app(soccer, tmp_path_factory):
    """An app that tracked one event on a storage-backed session."""
    path = str(tmp_path_factory.mktemp("health") / "store.db")
    session = _storage_session(soccer, path)
    app = TwitInfoApp(session)
    app.track("Soccer", ("tevez",), start=soccer.start, end=soccer.end)
    yield app, path
    session.close()


def fetch(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read().decode("utf-8")


def test_tracking_persists_health_snapshots(tracked_app, soccer):
    app, _path = tracked_app
    series = app.session.store.metrics_series(label="Soccer")
    assert series
    names = {sample["name"] for sample in series}
    assert any(name.startswith("event.Soccer") for name in names)
    for sample in series:
        assert sample["window_start"] == soccer.start
        assert sample["window_end"] == soccer.end


def test_health_endpoint_serves_stored_series(tracked_app):
    app, _path = tracked_app
    with TwitInfoServer(app) as server:
        status, body = fetch(server.url + "/health.json")
        assert status == 200
        samples = json.loads(body)
        assert samples
        status, body = fetch(server.url + "/event/Soccer/health.json")
        assert status == 200
        event_samples = json.loads(body)
        assert event_samples
        assert {s["label"] for s in event_samples} == {"Soccer"}
        metric = event_samples[0]["name"]
        status, body = fetch(
            server.url + f"/event/Soccer/health.json?name={metric}"
        )
        assert {s["name"] for s in json.loads(body)} == {metric}


def test_health_endpoint_404s_without_store(soccer):
    app = TwitInfoApp(TweeQL.for_scenarios(soccer))
    with TwitInfoServer(app) as server:
        try:
            urllib.request.urlopen(server.url + "/health.json", timeout=10)
        except urllib.error.HTTPError as exc:
            assert exc.code == 404
            assert "historical store" in exc.read().decode("utf-8")
        else:  # pragma: no cover - failure path
            raise AssertionError("expected a 404 without a store")


def test_backfilled_event_renders_before_first_live_tweet(
    tracked_app, soccer
):
    """The paper's demo moment: an analyst shows up mid-event, and the
    dashboard timeline (with detected peaks) fills instantly from the
    archive instead of waiting for tweets to stream in."""
    _app, path = tracked_app
    session = _storage_session(soccer, path, backfill=True, batch_size=1)
    try:
        start = session.clock.now
        app = TwitInfoApp(session)
        tracked = app.create_event(
            "Replay", ("tevez",), start=soccer.start, end=soccer.end
        )
        snapshots = list(app.monitor(tracked, snapshot_every=100, limit=600))
        assert session.clock.now == start  # never waited on the stream
        assert tracked.timeline.total >= 600
        assert len(tracked.peaks) >= 1  # the first goal is already there
        assert snapshots[-1].final
    finally:
        session.close()
