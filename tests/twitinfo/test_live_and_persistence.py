"""Live monitoring and event persistence."""

import pytest

from repro import TweeQL
from repro.twitinfo import TwitInfoApp


@pytest.fixture()
def app_and_scenario(soccer):
    session = TweeQL.for_scenarios(soccer, seed=11)
    return TwitInfoApp(session), soccer


def test_monitor_yields_snapshots_and_final(app_and_scenario):
    app, soccer = app_and_scenario
    tracked = app.create_event(
        "live", soccer.keywords, start=soccer.start, end=soccer.end
    )
    snapshots = list(app.monitor(tracked, snapshot_every=1000))
    assert len(snapshots) >= 2
    assert snapshots[-1].final
    assert not any(s.final for s in snapshots[:-1])
    seen = [s.tweets_seen for s in snapshots]
    assert seen == sorted(seen)


def test_monitor_detects_goals_while_streaming(app_and_scenario):
    """Peaks surface mid-stream, before the event ends — the §3.2
    realtime behaviour."""
    app, soccer = app_and_scenario
    tracked = app.create_event(
        "live", soccer.keywords, start=soccer.start, end=soccer.end
    )
    first_peak_at = None
    for snapshot in app.monitor(tracked, snapshot_every=500):
        if snapshot.new_peaks and first_peak_at is None and not snapshot.final:
            first_peak_at = snapshot.stream_time
    assert first_peak_at is not None
    assert first_peak_at < soccer.end  # seen before the stream finished
    # All goals eventually become peaks.
    for goal in soccer.truth.events:
        assert any(
            p.start - 120 <= goal.time < p.end + 120 for p in tracked.peaks
        )


def test_monitor_peak_labels_available_live(app_and_scenario):
    app, soccer = app_and_scenario
    tracked = app.create_event(
        "live", soccer.keywords, start=soccer.start, end=soccer.end
    )
    labeled = [
        peak
        for snapshot in app.monitor(tracked, snapshot_every=800)
        for peak in snapshot.new_peaks
    ]
    assert labeled
    final_goal = soccer.truth.events[-1]
    nearest = min(labeled, key=lambda p: abs(p.apex_time - final_goal.time))
    assert set(final_goal.expected_terms) <= set(nearest.terms)


def test_monitor_respects_limit(app_and_scenario):
    app, soccer = app_and_scenario
    tracked = app.create_event("live", soccer.keywords)
    snapshots = list(app.monitor(tracked, snapshot_every=100, limit=250))
    assert snapshots[-1].tweets_seen == 250


def test_live_and_batch_agree_on_goal_peaks(app_and_scenario):
    app, soccer = app_and_scenario
    live = app.create_event(
        "live", soccer.keywords, start=soccer.start, end=soccer.end
    )
    for _snapshot in app.monitor(live, snapshot_every=1000):
        pass
    live_times = sorted(p.apex_time for p in live.peaks)

    batch = app.track(
        "batch", soccer.keywords, start=soccer.start, end=soccer.end
    )
    batch_times = sorted(p.apex_time for p in batch.peaks)
    # Every live peak has a batch peak within two bins.
    for t in live_times:
        assert any(abs(t - b) <= 120 for b in batch_times)


def test_save_and_load_event_round_trip(app_and_scenario, tmp_path):
    app, soccer = app_and_scenario
    tracked = app.track(
        "persisted", soccer.keywords, start=soccer.start, end=soccer.end
    )
    path = str(tmp_path / "event.db")
    app.save_event(tracked, path)
    loaded = app.load_event(path)
    assert loaded.definition == tracked.definition
    assert len(loaded.log) == len(tracked.log)
    assert loaded.report().as_dict() == tracked.report().as_dict()
    assert [p.label for p in loaded.peaks] == [p.label for p in tracked.peaks]


def test_load_event_missing_meta(tmp_path, app_and_scenario):
    app, _soccer = app_and_scenario
    from repro.storage.tweetlog import SqliteTweetLog

    path = str(tmp_path / "empty.db")
    SqliteTweetLog(path).close()
    with pytest.raises(KeyError):
        app.load_event(path)
