"""Lazy, capped gap filling in Timeline.bins / iter_bins.

A week-long lull at 1-second bins used to materialize ~600k zero tuples
eagerly; gap runs are now generated lazily and truncated to MAX_GAP_RUN
zeros per lull, without changing what the peak detector sees for the
normal gaps the demo scenarios produce.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.twitinfo.peaks import PeakDetector
from repro.twitinfo.timeline import MAX_GAP_RUN, Timeline


def _naive_bins(timeline: Timeline) -> list[tuple[float, int]]:
    """The original eager, uncapped gap-filling semantics."""
    counts = timeline._counts
    indices = sorted(counts)
    return [
        (timeline.bin_start(i), counts.get(i, 0))
        for i in range(indices[0], indices[-1] + 1)
    ]


def test_iter_bins_is_lazy():
    timeline = Timeline(bin_seconds=1.0)
    timeline.add(0.0)
    timeline.add(1e9)  # a billion-bin gap: materializing would explode
    iterator = timeline.iter_bins()
    assert isinstance(iterator, Iterator)
    assert next(iterator) == (0.0, 1)
    assert next(iterator) == (1e9 - MAX_GAP_RUN, 0)


def test_huge_gap_is_capped_to_max_gap_run():
    timeline = Timeline(bin_seconds=1.0)
    timeline.add(0.0)
    timeline.add(7 * 24 * 3600.0)  # a week later
    bins = timeline.bins()
    assert len(bins) == 1 + MAX_GAP_RUN + 1
    # The retained zeros are the trailing run: contiguous into the burst,
    # so the detector's EWMA still ramps down before the next spike.
    assert bins[-1] == (7 * 24 * 3600.0, 1)
    assert bins[-2] == (7 * 24 * 3600.0 - 1.0, 0)
    assert all(count == 0 for _start, count in bins[1:-1])


def test_normal_gaps_match_the_eager_semantics():
    timeline = Timeline(bin_seconds=60.0)
    for timestamp in (0.0, 60.0, 600.0, 620.0, 3000.0, 3000.0):
        timeline.add(timestamp)
    assert timeline.bins() == _naive_bins(timeline)
    assert timeline.bins(max_gap_run=None) == _naive_bins(timeline)


def test_fill_gaps_false_skips_zeros():
    timeline = Timeline(bin_seconds=60.0)
    timeline.add(0.0)
    timeline.add(600.0)
    assert timeline.bins(fill_gaps=False) == [(0.0, 1), (600.0, 1)]


def test_peak_detection_unchanged_for_normal_gaps():
    timeline = Timeline(bin_seconds=60.0)
    for index in range(40):
        timeline.add(index * 60.0, count=10)
    for index in range(40, 43):  # a burst after a short lull
        timeline.add(300.0 + index * 60.0, count=120)
    capped = PeakDetector(bin_seconds=60.0).run(timeline.bins())
    eager = PeakDetector(bin_seconds=60.0).run(_naive_bins(timeline))
    assert [(p.label, p.start, p.apex_count) for p in capped] == [
        (p.label, p.start, p.apex_count) for p in eager
    ]


def test_count_between_sparse_path_matches_dense():
    timeline = Timeline(bin_seconds=1.0)
    timeline.add(0.0, count=3)
    timeline.add(5.0, count=4)
    timeline.add(1e6, count=5)
    # Wide range: hi - lo + 1 >> populated bins, so the sparse path runs.
    assert timeline.count_between(0.0, 2e6) == 12
    assert timeline.count_between(1.0, 6.0) == 4
    assert timeline.count_between(0.0, 1.0) == 3
    assert timeline.count_between(10.0, 20.0) == 0
