"""§3.3's Red Sox–Yankees example: per-peak sentiment varies by region.

"A user should be able to quickly zoom in on clusters of activity around
New York and Boston during a Red Sox-Yankees baseball game, with sentiment
toward a given peak (e.g., a home run) varying by region."
"""

import pytest

from repro import TweeQL
from repro.geo.bbox import named_box
from repro.twitinfo import TwitInfoApp
from repro.twitter.users import UserPopulation
from repro.twitter.workloads import baseball_game_scenario


@pytest.fixture(scope="module")
def game():
    population = UserPopulation(size=3000, seed=17)
    scenario = baseball_game_scenario(seed=17, population=population)
    session = TweeQL.for_scenarios(scenario, seed=17)
    app = TwitInfoApp(session)
    event = app.track(
        "Red Sox vs Yankees", scenario.keywords,
        start=scenario.start, end=scenario.end,
    )
    return app, event, scenario


def polarity(counts):
    positive, negative, _neutral = counts
    total = positive + negative
    return (positive - negative) / total if total else 0.0


def test_every_homerun_is_a_labeled_peak(game):
    _app, event, scenario = game
    for truth in scenario.truth.events:
        peak = min(event.peaks, key=lambda p: abs(p.apex_time - truth.time))
        assert abs(peak.apex_time - truth.time) <= 240
        assert set(truth.expected_terms) <= set(peak.terms)


def test_sentiment_varies_by_region_per_peak(game):
    """For each home run, the scoring team's metro is happier than the
    rival's — and the split flips with the scoring team."""
    _app, event, scenario = game
    boxes = {"nyc": named_box("nyc"), "boston": named_box("boston")}
    for truth in scenario.truth.events:
        regions = event.map.sentiment_by_region(
            boxes, truth.time, truth.time + 360
        )
        nyc = polarity(regions["nyc"])
        boston = polarity(regions["boston"])
        if truth.info["team"] == "yankees":
            assert nyc > boston
        else:
            assert boston > nyc


def test_activity_clusters_around_both_metros(game):
    _app, event, scenario = game
    truth = scenario.truth.events[0]
    markers = event.map.markers(truth.time, truth.time + 360)
    boxes = {"nyc": named_box("nyc"), "boston": named_box("boston")}
    in_metros = sum(
        1 for m in markers
        if any(b.contains(m.lat, m.lon) for b in boxes.values())
    )
    # The two metro boxes cover ~0.02% of the planet but hold a large
    # share of the peak's geotagged reaction (national chatter and metro
    # suburbs outside the tight boxes make up the rest).
    assert in_metros > 0.15 * len(markers)


def test_whole_game_sentiment_is_less_polarized_than_peaks(game):
    """Regional polarity is a *peak* phenomenon; the whole-game view
    blends opposite reactions."""
    _app, event, scenario = game
    boxes = {"nyc": named_box("nyc")}
    whole = polarity(event.map.sentiment_by_region(boxes)["nyc"])
    first = scenario.truth.events[0]  # a Yankees homer: NYC euphoric
    peak = polarity(
        event.map.sentiment_by_region(boxes, first.time, first.time + 360)["nyc"]
    )
    assert peak > whole
