"""Dashboard and app edge cases: empty events, no peaks, range views."""

import pytest

from repro import TweeQL
from repro.twitinfo import TwitInfoApp


@pytest.fixture()
def app(soccer):
    session = TweeQL.for_scenarios(soccer, seed=11)
    return TwitInfoApp(session)


def test_event_with_no_matching_tweets(app):
    tracked = app.track("empty", ("zzznothingmatches",))
    report = tracked.report()
    assert report.tweets_logged == 0
    assert report.peaks == 0
    dashboard = app.dashboard(tracked)
    text = dashboard.render_text()
    assert "TwitInfo" in text
    html = dashboard.render_html()
    assert html.startswith("<!DOCTYPE html>")
    payload = dashboard.to_json()
    assert payload["timeline"] == []
    assert payload["sentiment"]["pie"] == {"positive": 0.0, "negative": 0.0}


def test_event_with_tweets_but_no_peaks(app, soccer):
    """A rare keyword produces volume too low/flat for any peak."""
    tracked = app.track(
        "quiet", ("sitter",), start=soccer.start, end=soccer.end
    )
    assert len(tracked.log) > 0
    dashboard = app.dashboard(tracked)
    assert dashboard.render_text()
    assert dashboard.render_html()


def test_dashboard_range_view(app, soccer):
    tracked = app.track(
        "soccer", soccer.keywords, start=soccer.start, end=soccer.end
    )
    goal = soccer.truth.events[0]
    ranged = app.dashboard_range(tracked, goal.time - 60, goal.time + 300)
    whole = app.dashboard(tracked)
    assert ranged.sentiment.total < whole.sentiment.total
    for entry in ranged.relevant:
        assert goal.time - 60 <= entry.tweet.created_at < goal.time + 300


def test_dashboard_range_validates(app, soccer):
    tracked = app.track("soccer2", soccer.keywords)
    with pytest.raises(ValueError):
        app.dashboard_range(tracked, 100.0, 100.0)


def test_monitor_empty_event(app):
    tracked = app.create_event("empty-live", ("zzznothingmatches",))
    snapshots = list(app.monitor(tracked, snapshot_every=100))
    assert len(snapshots) == 1
    assert snapshots[0].final
    assert snapshots[0].tweets_seen == 0


def test_sample_rate_limit_degrades_planning(soccer):
    """With the sample budget exhausted, multi-candidate queries still
    plan (falling back to the first candidate)."""
    from repro.errors import RateLimitError
    from repro.twitter.stream import Firehose, StreamingAPI
    from repro.clock import VirtualClock

    clock = VirtualClock(start=soccer.start)
    api = StreamingAPI(
        Firehose.from_scenarios(soccer), clock=clock, sample_budget=0
    )
    with pytest.raises(RateLimitError):
        api.sample(rate=0.01)
    session = TweeQL(api=api, clock=clock)
    handle = session.query(
        "SELECT text FROM twitter WHERE text contains 'tevez' "
        "AND location in [bounding box for NYC] LIMIT 2;"
    )
    assert "fell back" in handle.explain()
    handle.close()


def test_sample_budget_consumed_then_exhausted(soccer):
    from repro.errors import RateLimitError
    from repro.twitter.stream import Firehose, StreamingAPI

    api = StreamingAPI(Firehose.from_scenarios(soccer), sample_budget=2)
    api.sample(rate=0.01, limit=5)
    api.sample(rate=0.01, limit=5)
    with pytest.raises(RateLimitError):
        api.sample(rate=0.01, limit=5)
