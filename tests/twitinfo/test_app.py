"""TwitInfo end-to-end: tracking, peaks vs ground truth, drill-down,
dashboards."""

import json

import pytest

from repro import TweeQL
from repro.twitinfo import TwitInfoApp


@pytest.fixture(scope="module")
def tracked(soccer):
    session = TweeQL.for_scenarios(soccer, seed=11)
    app = TwitInfoApp(session)
    event = app.track(
        "Soccer: Manchester City vs. Liverpool",
        soccer.keywords,
        start=soccer.start,
        end=soccer.end,
    )
    return app, event, soccer


def test_event_logs_matching_tweets(tracked):
    _app, event, soccer = tracked
    assert len(event.log) > 1000
    keywords = tuple(k.casefold() for k in soccer.keywords)
    for tweet in list(event.log.scan())[:200]:
        assert any(k in tweet.text.casefold() for k in keywords)


def test_peaks_cover_all_goals(tracked):
    """Recall: every ground-truth goal lies inside some detected peak."""
    _app, event, soccer = tracked
    for goal in soccer.truth.events:
        covering = [
            p for p in event.peaks
            if p.start - 120 <= goal.time < p.end + 60
        ]
        assert covering, f"goal at {goal.time} not covered by any peak"


def test_goal_peaks_carry_expected_terms(tracked):
    """The Figure-1 behaviour: the 3-0 goal peak is labeled '3-0','tevez'."""
    _app, event, soccer = tracked
    last_goal = soccer.truth.events[-1]
    peak = min(event.peaks, key=lambda p: abs(p.apex_time - last_goal.time))
    assert set(last_goal.expected_terms) <= set(peak.terms)


def test_report_numbers_consistent(tracked):
    _app, event, _soccer = tracked
    report = event.report()
    assert report.tweets_logged == len(event.log)
    assert report.positive + report.negative + report.neutral == report.tweets_logged
    assert report.peaks == len(event.peaks)


def test_dashboard_whole_event(tracked):
    app, event, _soccer = tracked
    dashboard = app.dashboard(event)
    assert dashboard.selected_peak is None
    assert dashboard.peaks == event.peaks
    assert len(dashboard.relevant) > 0
    assert len(dashboard.links) <= 3


def test_dashboard_peak_drilldown_filters_panels(tracked):
    app, event, soccer = tracked
    last_goal = soccer.truth.events[-1]
    peak = min(event.peaks, key=lambda p: abs(p.apex_time - last_goal.time))
    dashboard = app.dashboard(event, peak_label=peak.label)
    assert dashboard.selected_peak is peak
    whole = app.dashboard(event)
    assert dashboard.sentiment.total < whole.sentiment.total
    # Relevant tweets come from inside the peak window.
    for entry in dashboard.relevant:
        assert peak.start <= entry.tweet.created_at < peak.end


def test_dashboard_unknown_peak_raises(tracked):
    app, event, _soccer = tracked
    with pytest.raises(KeyError):
        app.dashboard(event, peak_label="ZZ")


def test_peak_search(tracked):
    _app, event, _soccer = tracked
    hits = event.search_peaks("tevez")
    assert hits
    assert all("tevez" in " ".join(p.terms) for p in hits)


def test_dashboard_renderings(tracked):
    app, event, _soccer = tracked
    dashboard = app.dashboard(event)
    text = dashboard.render_text()
    assert "TwitInfo" in text
    assert "Peaks:" in text
    html_page = dashboard.render_html()
    assert html_page.startswith("<!DOCTYPE html>")
    assert "svg" in html_page
    payload = json.loads(dashboard.to_json_text())
    assert payload["event"] == event.definition.name
    assert payload["timeline"]
    assert payload["sentiment"]["pie"]["positive"] >= 0


def test_goal_sentiment_skews_positive(tracked):
    """City fans dominate the generator: goal windows skew positive —
    visible in the drilled-down pie exactly as §3.3 describes."""
    app, event, soccer = tracked
    goal = soccer.truth.events[0]
    peak = min(event.peaks, key=lambda p: abs(p.apex_time - goal.time))
    dashboard = app.dashboard(event, peak_label=peak.label)
    positive, negative = dashboard.sentiment.proportions()
    assert positive > negative


def test_map_markers_cluster_in_big_cities(tracked):
    app, event, _soccer = tracked
    dashboard = app.dashboard(event)
    assert len(dashboard.markers) > 50


def test_run_event_with_limit(soccer):
    session = TweeQL.for_scenarios(soccer, seed=11)
    app = TwitInfoApp(session)
    event = app.create_event("limited", soccer.keywords)
    report = app.run_event(event, limit=100)
    assert report.tweets_logged == 100
