"""TwitInfo on a shared scan: N tracked events, one stream connection.

``track_many`` admits every event's keyword query onto one
:class:`SharedScanGroup`. The dashboard contract: timelines, peaks, and
reports per event are identical to tracking each event alone on its own
(lossless) session — interleaved routing of two different events' tweets
through one scan must not leak rows across events or perturb either
detector.
"""

from __future__ import annotations

import pytest

from repro import EngineConfig, TweeQL
from repro.obs import app_metrics
from repro.twitinfo import TwitInfoApp

SEED = 11


@pytest.fixture(scope="module")
def runs(soccer, quakes):
    """Track both events shared and independently over one merged firehose."""

    def fresh_session(config=None):
        return TweeQL.for_scenarios(
            soccer, quakes, config=config, delivery_ratio=1.0, seed=SEED
        )

    events = {
        "match": dict(
            keywords=soccer.keywords, start=soccer.start, end=soccer.end
        ),
        "quake": dict(
            keywords=quakes.keywords, start=quakes.start, end=quakes.end
        ),
    }

    shared_app = TwitInfoApp(fresh_session())
    shared_tracked = {}
    tracked_list = shared_app.track_many(
        {name: spec["keywords"] for name, spec in events.items()}
    )
    for name, tracked in zip(events, tracked_list):
        shared_tracked[name] = tracked

    independent = {}
    for name, spec in events.items():
        app = TwitInfoApp(fresh_session())
        independent[name] = app.track(name, **spec)

    return shared_app, shared_tracked, independent


def test_shared_events_log_identical_tweets(runs):
    _app, shared, independent = runs
    for name in shared:
        shared_ids = [t.tweet_id for t in shared[name].log.scan()]
        solo_ids = [t.tweet_id for t in independent[name].log.scan()]
        assert shared_ids == solo_ids, name
        assert shared_ids, name


def test_timelines_bin_for_bin_identical(runs):
    """Interleaved fanout routing must produce the same binned counts."""
    _app, shared, independent = runs
    for name in shared:
        assert dict(shared[name].timeline._counts) == dict(
            independent[name].timeline._counts
        ), name
    # The two events really are distinct substreams, not copies.
    assert dict(shared["match"].timeline._counts) != dict(
        shared["quake"].timeline._counts
    )


def test_peaks_are_detected_independently_per_event(runs):
    """Each event's PeakDetector sees only its own substream: peak labels,
    windows, and key terms match the independent run exactly."""
    _app, shared, independent = runs
    for name in shared:
        shared_peaks = [
            (p.label, p.start, p.end, p.terms) for p in shared[name].peaks
        ]
        solo_peaks = [
            (p.label, p.start, p.end, p.terms) for p in independent[name].peaks
        ]
        assert shared_peaks == solo_peaks, name
        assert shared_peaks, name


def test_reports_match_independent_runs(runs):
    _app, shared, independent = runs
    for name in shared:
        assert shared[name].report().as_dict() == (
            independent[name].report().as_dict()
        ), name


def test_shared_group_used_one_connection(runs):
    app, _shared, _independent = runs
    assert len(app.shared_groups) == 1
    group = app.shared_groups[0]
    assert group.stats.admitted == 2
    assert group.stats.evicted == 0
    tree = group.stats_dict()
    assert tree["connection"]["delivered"] == tree["connection"]["scanned"]
    snapshot = app_metrics(app).snapshot()
    assert snapshot["shared"]["0"]["group"]["admitted"] == 2
    assert snapshot["shared"]["0"]["connection"]["reconnects"] == 0


def test_shared_scan_config_routes_single_track(soccer):
    """``EngineConfig(shared_scan=True)`` sends plain ``track()`` through
    a one-tenant shared group, with identical panels to the default path."""
    def run(config=None):
        session = TweeQL.for_scenarios(
            soccer, config=config, delivery_ratio=1.0, seed=SEED
        )
        app = TwitInfoApp(session)
        tracked = app.track(
            "match", soccer.keywords, start=soccer.start, end=soccer.end
        )
        return app, tracked

    shared_app, shared_tracked = run(EngineConfig(shared_scan=True))
    default_app, default_tracked = run()
    assert len(shared_app.shared_groups) == 1
    assert not default_app.shared_groups
    assert dict(shared_tracked.timeline._counts) == dict(
        default_tracked.timeline._counts
    )
    assert [p.label for p in shared_tracked.peaks] == [
        p.label for p in default_tracked.peaks
    ]
    assert shared_tracked.report().as_dict() == default_tracked.report().as_dict()
