"""The TwitInfo web server."""

import json
import urllib.error
import urllib.request

import pytest

from repro import TweeQL
from repro.twitinfo import TwitInfoApp
from repro.twitinfo.server import TwitInfoServer


@pytest.fixture(scope="module")
def server(soccer):
    session = TweeQL.for_scenarios(soccer, seed=11)
    app = TwitInfoApp(session)
    app.track("Soccer", soccer.keywords, start=soccer.start, end=soccer.end)
    with TwitInfoServer(app) as running:
        yield running


def fetch(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read().decode("utf-8")


def test_index_lists_events(server):
    status, body = fetch(server.url + "/")
    assert status == 200
    assert "Soccer" in body
    assert "peaks" in body


def test_event_page_is_the_dashboard(server):
    status, body = fetch(server.url + "/event/Soccer")
    assert status == 200
    assert body.startswith("<!DOCTYPE html>")
    assert "Event timeline" in body


def test_event_json(server):
    status, body = fetch(server.url + "/event/Soccer.json")
    assert status == 200
    payload = json.loads(body)
    assert payload["event"] == "Soccer"
    assert payload["timeline"]
    assert payload["peaks"]


def test_peak_drilldown_via_query_param(server):
    _status, body = fetch(server.url + "/event/Soccer.json")
    label = json.loads(body)["peaks"][-1]["label"]
    status, drilled = fetch(server.url + f"/event/Soccer.json?peak={label}")
    assert status == 200
    payload = json.loads(drilled)
    assert payload["selected_peak"] == label
    whole = json.loads(body)
    assert (
        payload["sentiment"]["positive"] + payload["sentiment"]["negative"]
        <= whole["sentiment"]["positive"] + whole["sentiment"]["negative"]
    )


def test_peak_search_endpoint(server):
    status, body = fetch(server.url + "/event/Soccer/peaks?q=tevez")
    assert status == 200
    hits = json.loads(body)
    assert hits
    assert all("tevez" in " ".join(h["terms"]) for h in hits)


def test_unknown_event_is_404(server):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        fetch(server.url + "/event/Nothing")
    assert excinfo.value.code == 404


def test_unknown_path_is_404(server):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        fetch(server.url + "/bogus/path")
    assert excinfo.value.code == 404


def test_unknown_peak_is_404(server):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        fetch(server.url + "/event/Soccer?peak=ZZ")
    assert excinfo.value.code == 404


def post(url, data):
    request = urllib.request.Request(
        url, data=data.encode("utf-8"), method="POST",
        headers={"Content-Type": "application/x-www-form-urlencoded"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, response.read().decode("utf-8")


def test_track_new_event_via_post(server):
    status, body = post(
        server.url + "/track", "name=Tevez watch&keywords=tevez"
    )
    assert status == 201
    payload = json.loads(body)
    assert payload["event"] == "Tevez watch"
    assert payload["tweets_logged"] > 0
    # The new event is now served like any other.
    status, page = fetch(server.url + payload["url"])
    assert status == 200
    assert "Tevez watch" in page


def test_track_requires_fields(server):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        post(server.url + "/track", "name=&keywords=")
    assert excinfo.value.code == 400


def test_post_unknown_path_is_404(server):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        post(server.url + "/bogus", "a=1")
    assert excinfo.value.code == 404
