"""Event definitions and their TweeQL compilation."""

import pytest

from repro.sql import parse
from repro.twitinfo.event import EventDefinition, PeakAnnotation


def test_requires_keywords():
    with pytest.raises(ValueError):
        EventDefinition(name="x", keywords=())
    with pytest.raises(ValueError):
        EventDefinition(name="x", keywords=("",))


def test_window_validation():
    with pytest.raises(ValueError):
        EventDefinition(name="x", keywords=("a",), start=10.0, end=5.0)
    with pytest.raises(ValueError):
        EventDefinition(name="x", keywords=("a",), bin_seconds=0.0)


def test_keywords_stripped():
    event = EventDefinition(name="x", keywords=(" soccer ", "goal"))
    assert event.keywords == ("soccer", "goal")


def test_to_tweeql_parses_and_ors_keywords():
    event = EventDefinition(
        name="Soccer", keywords=("soccer", "manchester"), start=100.0, end=200.0
    )
    sql = event.to_tweeql()
    stmt = parse(sql)
    assert stmt.source == "twitter"
    rendered = stmt.where.to_sql()
    assert "soccer" in rendered and "manchester" in rendered
    assert "created_at" in rendered


def test_to_tweeql_escapes_quotes():
    event = EventDefinition(name="x", keywords=("o'brien",))
    stmt = parse(event.to_tweeql())
    # The quote survives the escape/parse round trip as a literal value.
    from repro.sql import ast

    literals = [
        node.value for node in ast.walk(stmt.where)
        if isinstance(node, ast.Literal) and isinstance(node.value, str)
    ]
    assert "o'brien" in literals


def test_to_tweeql_into():
    event = EventDefinition(name="x", keywords=("a",))
    stmt = parse(event.to_tweeql(into="log"))
    assert stmt.into == "log"


def test_in_window():
    event = EventDefinition(name="x", keywords=("a",), start=10.0, end=20.0)
    assert event.in_window(10.0)
    assert event.in_window(19.9)
    assert not event.in_window(20.0)
    assert not event.in_window(9.9)
    unbounded = EventDefinition(name="y", keywords=("a",))
    assert unbounded.in_window(1e12)


def test_peak_annotation_search():
    peak = PeakAnnotation(
        label="F", start=0.0, end=1.0, apex_time=0.5, apex_count=10,
        terms=("3-0", "tevez"),
    )
    assert peak.matches_search("tevez")
    assert peak.matches_search("TEV")
    assert not peak.matches_search("silva")
