"""Volume timeline binning."""

import pytest

from repro.twitinfo.timeline import Timeline


def test_add_and_total():
    timeline = Timeline(bin_seconds=60.0)
    for t in (10.0, 20.0, 70.0):
        timeline.add(t)
    assert timeline.total == 3
    assert len(timeline) == 2


def test_bins_ordered_with_gaps_filled():
    timeline = Timeline(bin_seconds=60.0)
    timeline.add(10.0)
    timeline.add(250.0)
    bins = timeline.bins()
    assert bins == [(0.0, 1), (60.0, 0), (120.0, 0), (180.0, 0), (240.0, 1)]


def test_bins_without_gap_fill():
    timeline = Timeline(bin_seconds=60.0)
    timeline.add(10.0)
    timeline.add(250.0)
    assert timeline.bins(fill_gaps=False) == [(0.0, 1), (240.0, 1)]


def test_negative_and_origin():
    timeline = Timeline(bin_seconds=60.0, origin=30.0)
    timeline.add(30.0)
    timeline.add(89.9)
    assert timeline.bins() == [(30.0, 2)]


def test_count_between():
    timeline = Timeline(bin_seconds=10.0)
    for t in (5.0, 15.0, 25.0, 35.0):
        timeline.add(t)
    assert timeline.count_between(10.0, 30.0) == 2


def test_weighted_add():
    timeline = Timeline(bin_seconds=10.0)
    timeline.add(5.0, count=7)
    assert timeline.total == 7


def test_max_count():
    timeline = Timeline(bin_seconds=10.0)
    assert timeline.max_count() == 0
    timeline.add(5.0)
    timeline.add(5.0)
    timeline.add(15.0)
    assert timeline.max_count() == 2


def test_sparkline_length_and_shape():
    timeline = Timeline(bin_seconds=10.0)
    for i in range(100):
        timeline.add(i * 10.0, count=1 + (i % 10))
    line = timeline.sparkline(width=40)
    assert len(line) == 40
    assert "█" in line


def test_sparkline_empty():
    assert Timeline().sparkline() == ""


def test_invalid_bin_seconds():
    with pytest.raises(ValueError):
        Timeline(bin_seconds=0.0)
