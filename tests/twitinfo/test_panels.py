"""The dashboard panels: sentiment pie, links, map, relevance, labels."""

import pytest

from repro.geo.bbox import named_box
from repro.twitinfo.event import EventDefinition
from repro.twitinfo.labels import PeakLabeler
from repro.twitinfo.links import LinkAggregator
from repro.twitinfo.mapview import MapMarker, MapView
from repro.twitinfo.peaks import Peak
from repro.twitinfo.relevance import relevant_tweets
from repro.twitinfo.sentiment_view import SentimentSummary
from repro.twitter.models import Tweet, User


# --- sentiment ----------------------------------------------------------------


def test_sentiment_counts_and_pie():
    summary = SentimentSummary()
    for label in (1, 1, 1, -1, 0, 0):
        summary.add(label)
    assert (summary.positive, summary.negative, summary.neutral) == (3, 1, 2)
    positive, negative = summary.proportions()
    assert positive == pytest.approx(0.75)
    assert negative == pytest.approx(0.25)


def test_sentiment_pie_empty():
    assert SentimentSummary().proportions() == (0.0, 0.0)


def test_recall_correction_shifts_pie():
    """If negatives are recalled at 0.5 and positives at 1.0, observed 3:1
    positive is really 3:2."""
    summary = SentimentSummary(positive=3, negative=1)
    positive, negative = summary.corrected_proportions(1.0, 0.5)
    assert positive == pytest.approx(0.6)
    assert negative == pytest.approx(0.4)


def test_recall_correction_validates():
    with pytest.raises(ValueError):
        SentimentSummary(positive=1).corrected_proportions(0.0, 1.0)


def test_sentiment_merge():
    a = SentimentSummary(positive=1, negative=2, neutral=3)
    b = SentimentSummary(positive=10)
    merged = a.merged(b)
    assert merged.positive == 11
    assert merged.total == 16


# --- links ---------------------------------------------------------------------


def test_links_top3_whole_event():
    links = LinkAggregator()
    for i in range(5):
        links.add("http://a", float(i))
    for i in range(3):
        links.add("http://b", float(i))
    links.add("http://c", 0.0)
    top = links.top(3)
    assert [(l.url, l.count) for l in top] == [
        ("http://a", 5), ("http://b", 3), ("http://c", 1),
    ]


def test_links_timeframe_query():
    links = LinkAggregator()
    for t in (1.0, 2.0, 100.0):
        links.add("http://a", t)
    links.add("http://b", 100.0)
    top = links.top(3, start=50.0, end=150.0)
    assert {(l.url, l.count) for l in top} == {("http://a", 1), ("http://b", 1)}


def test_links_sketch_agrees_on_heavy_hitter():
    links = LinkAggregator()
    for i in range(100):
        links.add("http://popular", float(i))
        links.add(f"http://rare{i}", float(i))
    assert links.top_sketched(1)[0].url == "http://popular"


def test_links_tie_break_alphabetical():
    links = LinkAggregator()
    links.add("http://z", 0.0)
    links.add("http://a", 0.0)
    assert [l.url for l in links.top(2)] == ["http://a", "http://z"]


# --- map -------------------------------------------------------------------------


def marker(lat, lon, sentiment, t=0.0):
    return MapMarker(lat=lat, lon=lon, sentiment=sentiment, timestamp=t, text="x")


def test_marker_colors():
    assert marker(0, 0, 1).color == "blue"
    assert marker(0, 0, -1).color == "red"
    assert marker(0, 0, 0).color == "white"


def test_map_time_filter():
    view = MapView()
    view.add(marker(40.7, -74.0, 1, t=10.0))
    view.add(marker(40.7, -74.0, -1, t=20.0))
    assert len(view.markers(start=15.0)) == 1
    assert len(view) == 2


def test_map_region_filter():
    view = MapView()
    view.add(marker(40.75, -73.98, 1, t=1.0))   # NYC
    view.add(marker(42.35, -71.06, -1, t=2.0))  # Boston
    nyc_markers = view.markers(box=named_box("nyc"))
    assert len(nyc_markers) == 1
    assert nyc_markers[0].sentiment == 1


def test_map_sentiment_by_region():
    view = MapView()
    view.add(marker(40.75, -73.98, 1, t=1.0))
    view.add(marker(40.76, -73.97, 1, t=2.0))
    view.add(marker(42.35, -71.06, -1, t=3.0))
    regions = view.sentiment_by_region(
        {"nyc": named_box("nyc"), "boston": named_box("boston")}
    )
    assert regions["nyc"] == (2, 0, 0)
    assert regions["boston"] == (0, 1, 0)


def test_map_out_of_order_insert():
    view = MapView()
    view.add(marker(0, 0, 0, t=10.0))
    view.add(marker(0, 0, 0, t=5.0))
    times = [m.timestamp for m in view.markers()]
    assert times == [5.0, 10.0]


# --- relevance --------------------------------------------------------------------


def tweet_of(tweet_id, text):
    return Tweet(
        tweet_id=tweet_id, created_at=float(tweet_id),
        user=User(user_id=tweet_id, screen_name=f"u{tweet_id}"), text=text,
    )


def test_relevant_tweets_ranking_and_colors():
    tweets = [
        tweet_of(1, "nothing to see"),
        tweet_of(2, "tevez goal tevez"),
        tweet_of(3, "one goal mentioned"),
    ]
    panel = relevant_tweets(tweets, ["tevez", "goal"], [0, 1, -1], limit=3)
    assert panel[0].tweet.tweet_id == 2
    assert panel[0].color == "blue"
    by_id = {entry.tweet.tweet_id: entry for entry in panel}
    assert by_id[3].color == "red"


def test_relevant_tweets_dedupes_texts():
    tweets = [tweet_of(i, "tevez goal") for i in range(1, 6)]
    tweets.append(tweet_of(9, "tevez different"))
    panel = relevant_tweets(tweets, ["tevez"], [0] * 6, limit=5)
    texts = [entry.tweet.text for entry in panel]
    assert len(texts) == len(set(texts)) == 2


def test_relevant_tweets_alignment_check():
    with pytest.raises(ValueError):
        relevant_tweets([tweet_of(1, "a")], ["a"], [])


# --- labels -----------------------------------------------------------------------


def test_labeler_suppresses_event_keywords():
    event = EventDefinition(name="x", keywords=("soccer",))
    labeler = PeakLabeler(event, terms_per_peak=3)
    for _ in range(50):
        labeler.observe("soccer chatter filler words")
    peak_texts = ["soccer tevez 3-0"] * 5 + ["soccer tevez scores"] * 5
    terms = [t.term for t in labeler.key_terms(peak_texts)]
    assert "soccer" not in terms
    assert "tevez" in terms


def test_labeler_annotate_builds_annotation():
    event = EventDefinition(name="x", keywords=("soccer",))
    labeler = PeakLabeler(event)
    for _ in range(30):
        labeler.observe("routine soccer commentary")
    peak = Peak("A", start=0.0, apex_time=30.0, apex_count=99,
                end=120.0, onset_mean=1.0, score=5.0)
    annotation = labeler.annotate(peak, ["tevez 3-0 goal"] * 6)
    assert annotation.label == "A"
    assert "tevez" in annotation.terms
    assert annotation.apex_count == 99
