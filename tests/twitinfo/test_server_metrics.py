"""The server's Prometheus ``/metrics`` endpoint."""

import urllib.request

import pytest

from repro import TweeQL
from repro.twitinfo import TwitInfoApp
from repro.twitinfo.server import TwitInfoServer


@pytest.fixture(scope="module")
def server(soccer):
    session = TweeQL.for_scenarios(soccer, seed=11)
    app = TwitInfoApp(session)
    app.track("Soccer", soccer.keywords, start=soccer.start, end=soccer.end)
    with TwitInfoServer(app) as running:
        yield running


def fetch(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.headers, response.read().decode("utf-8")


def test_metrics_exposition(server):
    status, headers, body = fetch(server.url + "/metrics")
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
    assert "# TYPE tweeql_event_Soccer_peaks gauge" in body
    assert "tweeql_event_Soccer_timeline_total" in body
    assert "tweeql_service_geocode_calls" in body
    assert body.endswith("\n")
    # Every sample line parses as "<name> <number>".
    for line in body.splitlines():
        if line.startswith("#"):
            continue
        name, value = line.rsplit(" ", 1)
        assert name.startswith("tweeql_")
        float(value)


def test_metrics_values_track_the_event(server):
    _status, _headers, body = fetch(server.url + "/metrics")
    samples = {
        line.rsplit(" ", 1)[0]: float(line.rsplit(" ", 1)[1])
        for line in body.splitlines()
        if not line.startswith("#")
    }
    assert samples["tweeql_event_Soccer_timeline_total"] > 0
    assert samples["tweeql_event_Soccer_peaks"] >= 1


def test_index_links_to_metrics(server):
    _status, _headers, body = fetch(server.url + "/")
    assert '<a href="/metrics">' in body
