"""Coverage-confidence wiring: event → dashboard → JSON → metrics → server.

A tracked event's stream connection knows how many matching tweets it
delivered versus how many matched (``ConnectionStats``); after the query
drains, the app turns that into a Wilson-interval
:class:`~repro.fidelity.coverage.CoverageEstimate` on the event. The
estimate must surface everywhere an event does: ``Dashboard.to_json``,
``/event/<name>.json``, and the ``/metrics`` registry.
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro import TweeQL
from repro.clock import VirtualClock
from repro.fidelity.coverage import CoverageEstimate
from repro.obs.metrics import app_metrics
from repro.twitinfo import TwitInfoApp
from repro.twitinfo.server import TwitInfoServer
from repro.twitter.stream import Firehose, StreamingAPI

SEED = 11


def make_app(scenario, delivery_ratio=1.0):
    clock = VirtualClock(start=scenario.start)
    api = StreamingAPI(
        Firehose(list(scenario.tweets)),
        clock=clock,
        delivery_ratio=delivery_ratio,
        seed=SEED,
    )
    session = TweeQL(api=api, clock=clock, seed=SEED)
    return TwitInfoApp(session)


class TestCoverageCapture:
    def test_lossless_run_has_full_coverage(self, soccer):
        app = make_app(soccer, delivery_ratio=1.0)
        tracked = app.track("Soccer", soccer.keywords)
        assert isinstance(tracked.coverage, CoverageEstimate)
        assert tracked.coverage.coverage == 1.0
        assert tracked.coverage.observed == tracked.coverage.eligible
        assert tracked.coverage.observed == len(tracked.log)

    def test_lossy_run_estimates_the_loss(self, soccer):
        app = make_app(soccer, delivery_ratio=0.9)
        tracked = app.track("Soccer", soccer.keywords)
        coverage = tracked.coverage
        assert coverage is not None
        assert coverage.observed < coverage.eligible
        assert coverage.ci_low <= coverage.coverage <= coverage.ci_high
        assert 0.85 < coverage.coverage < 0.95
        # The estimate is exactly delivered / matched on the connection.
        assert coverage.coverage == coverage.observed / coverage.eligible

    def test_shared_scan_events_share_the_connection_estimate(self, soccer):
        app = make_app(soccer, delivery_ratio=0.9)
        events = app.track_many(
            {"goals": ("goal",), "match": soccer.keywords}
        )
        estimates = [tracked.coverage for tracked in events]
        assert all(isinstance(e, CoverageEstimate) for e in estimates)
        assert estimates[0] == estimates[1]

    def test_unrun_event_has_no_coverage(self, soccer):
        app = make_app(soccer)
        tracked = app.create_event("idle", soccer.keywords)
        assert tracked.coverage is None

    def test_monitor_path_sets_coverage(self, soccer):
        app = make_app(soccer, delivery_ratio=0.9)
        tracked = app.create_event("live", soccer.keywords)
        for _snapshot in app.monitor(tracked, snapshot_every=1000):
            pass
        assert tracked.coverage is not None
        assert tracked.coverage.observed < tracked.coverage.eligible


class TestCoverageSurfaces:
    def test_dashboard_json_carries_coverage(self, soccer):
        app = make_app(soccer, delivery_ratio=0.9)
        tracked = app.track("Soccer", soccer.keywords)
        payload = app.dashboard(tracked).to_json()
        assert payload["coverage"] == tracked.coverage.as_dict()

    def test_dashboard_json_null_without_coverage(self, soccer):
        app = make_app(soccer)
        tracked = app.create_event("idle", soccer.keywords)
        assert app.dashboard(tracked).to_json()["coverage"] is None

    def test_dashboard_text_mentions_coverage(self, soccer):
        app = make_app(soccer, delivery_ratio=0.9)
        tracked = app.track("Soccer", soccer.keywords)
        assert "Coverage:" in app.dashboard(tracked).render_text()

    def test_metrics_registry_gains_coverage_gauges(self, soccer):
        app = make_app(soccer, delivery_ratio=0.9)
        tracked = app.track("Soccer", soccer.keywords)
        snapshot = app_metrics(app).snapshot()
        event_tree = snapshot["event"]["Soccer"]
        assert event_tree["coverage"] == tracked.coverage.coverage
        assert event_tree["coverage_confidence"] == pytest.approx(
            tracked.coverage.confidence
        )

    def test_metrics_skip_events_without_coverage(self, soccer):
        app = make_app(soccer)
        app.create_event("idle", soccer.keywords)
        snapshot = app_metrics(app).snapshot()
        assert "coverage" not in snapshot["event"]["idle"]


class TestServerEndpoint:
    @pytest.fixture(scope="class")
    def server(self, soccer):
        app = make_app(soccer, delivery_ratio=0.9)
        app.track("Soccer", soccer.keywords)
        with TwitInfoServer(app) as running:
            yield running

    def test_event_json_exposes_coverage(self, server):
        with urllib.request.urlopen(
            server.url + "/event/Soccer.json", timeout=10
        ) as response:
            payload = json.loads(response.read().decode("utf-8"))
        coverage = payload["coverage"]
        assert coverage is not None
        assert 0.0 < coverage["coverage"] < 1.0
        assert coverage["ci_low"] <= coverage["coverage"] <= coverage["ci_high"]
        assert 0.0 <= coverage["confidence"] <= 1.0

    def test_metrics_endpoint_exports_coverage_gauge(self, server):
        with urllib.request.urlopen(
            server.url + "/metrics", timeout=10
        ) as response:
            body = response.read().decode("utf-8")
        assert "event_Soccer_coverage" in body.replace(".", "_") or (
            "event.Soccer.coverage" in body
        )
