"""Peak-detection robustness under sampling jitter.

The regression the fidelity work pins: with
``PeakDetectorParams.for_sampled_stream(rate)``, every ground-truth
event is still detected at sampling rates 1.0, 0.1, and 0.01 — and the
bot-flood scenario produces **no phantom peaks** at any of those rates
(neither from shot noise on the thinned stream nor from Poisson
upper-tail bins on the busy firehose baseline).

Plus unit tests for the three hardening knobs themselves
(``min_support``, ``close_grace_bins``, ``min_lift``).
"""

from __future__ import annotations

import pytest

from repro.twitinfo.peaks import PeakDetector, PeakDetectorParams
from repro.twitinfo.timeline import Timeline
from repro.twitter.stream import Firehose, StreamingAPI
from repro.twitter.users import UserPopulation
from repro.twitter.workloads import bot_flood_scenario, election_night_scenario

SEED = 42
RATES = (1.0, 0.1, 0.01)
TOLERANCE = 180.0


@pytest.fixture(scope="module")
def jitter_population():
    return UserPopulation(size=1000, seed=SEED)


@pytest.fixture(scope="module")
def election(jitter_population):
    return election_night_scenario(
        seed=SEED, population=jitter_population, intensity=1.5
    )


@pytest.fixture(scope="module")
def botflood(jitter_population):
    return bot_flood_scenario(
        seed=SEED, population=jitter_population, intensity=1.5
    )


def detect(scenario, rate):
    """Thin the scenario to ``rate`` and run the hardened detector."""
    if rate == 1.0:
        tweets = scenario.tweets
    else:
        api = StreamingAPI(
            Firehose(list(scenario.tweets)), delivery_ratio=1.0, seed=SEED
        )
        tweets = api.sample(rate=rate, salt="jitter")
    timeline = Timeline(bin_seconds=60.0)
    for tweet in tweets:
        if tweet.matches_any_keyword(scenario.keywords):
            timeline.add(tweet.created_at)
    detector = PeakDetector(
        params=PeakDetectorParams.for_sampled_stream(rate), bin_seconds=60.0
    )
    return detector.run(timeline.bins())


def missed_events(scenario, peaks):
    """Ground-truth events no peak window covers (within tolerance)."""
    return [
        event.event_id
        for event in scenario.truth.events
        if not any(
            peak.start - TOLERANCE <= event.time <= peak.end + TOLERANCE
            for peak in peaks
        )
    ]


def phantom_peaks(scenario, peaks):
    """Detected peaks whose apex lies near no ground-truth event."""
    return [
        (peak.label, peak.apex_time, peak.apex_count)
        for peak in peaks
        if not any(
            event.start - TOLERANCE <= peak.apex_time <= event.end + TOLERANCE
            for event in scenario.truth.events
        )
    ]


# ---------------------------------------------------------------------------
# The jitter regression: every rate, every event, no bot-flood phantoms
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("rate", RATES)
def test_election_detects_every_event_at_rate(election, rate):
    peaks = detect(election, rate)
    assert missed_events(election, peaks) == []


@pytest.mark.parametrize("rate", RATES)
def test_botflood_detects_every_event_at_rate(botflood, rate):
    peaks = detect(botflood, rate)
    assert missed_events(botflood, peaks) == []


@pytest.mark.parametrize("rate", RATES)
def test_botflood_has_no_phantom_peaks_at_rate(botflood, rate):
    peaks = detect(botflood, rate)
    assert phantom_peaks(botflood, peaks) == []


# ---------------------------------------------------------------------------
# for_sampled_stream preset
# ---------------------------------------------------------------------------


class TestForSampledStream:
    def test_scales_min_count_with_floor(self):
        params = PeakDetectorParams.for_sampled_stream(0.01)
        assert params.min_count == 3.0  # 10 * 0.01 floored at 3
        params = PeakDetectorParams.for_sampled_stream(0.5)
        assert params.min_count == 5.0

    def test_turns_on_hardening(self):
        params = PeakDetectorParams.for_sampled_stream(0.1)
        assert params.min_support == 2
        assert params.close_grace_bins == 2
        assert params.min_lift == 1.5

    def test_respects_base(self):
        base = PeakDetectorParams(tau=3.0, min_count=40.0)
        params = PeakDetectorParams.for_sampled_stream(0.1, base=base)
        assert params.tau == 3.0
        assert params.min_count == 4.0

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            PeakDetectorParams.for_sampled_stream(0.0)
        with pytest.raises(ValueError):
            PeakDetectorParams.for_sampled_stream(1.5)

    def test_param_validation(self):
        with pytest.raises(ValueError):
            PeakDetectorParams(min_support=0)
        with pytest.raises(ValueError):
            PeakDetectorParams(close_grace_bins=-1)
        with pytest.raises(ValueError):
            PeakDetectorParams(min_lift=0.9)


# ---------------------------------------------------------------------------
# The hardening knobs, in isolation
# ---------------------------------------------------------------------------

def run_detector(counts, **param_kwargs):
    params = PeakDetectorParams(**param_kwargs)
    detector = PeakDetector(params=params, bin_seconds=60.0)
    return detector.run(
        [(index * 60.0, float(count)) for index, count in enumerate(counts)]
    )


FLAT = [10.0] * 12


class TestMinSupport:
    def test_single_bin_spike_is_ignored(self):
        peaks = run_detector(FLAT + [200.0] + FLAT, min_support=2)
        assert peaks == []

    def test_sustained_spike_opens_retroactively(self):
        counts = FLAT + [200.0, 180.0, 150.0] + FLAT
        peaks = run_detector(counts, min_support=2)
        assert len(peaks) == 1
        # The window opens at the *first* qualifying bin, not the second.
        assert peaks[0].start == len(FLAT) * 60.0
        assert peaks[0].apex_count == 200.0

    def test_default_still_opens_on_single_bin(self):
        peaks = run_detector(FLAT + [200.0] + FLAT)
        assert len(peaks) == 1


class TestCloseGrace:
    BURST = FLAT + [200.0, 190.0, 12.0, 185.0, 170.0, 150.0] + FLAT
    DIP_END = (len(FLAT) + 2) * 60.0 + 60.0  # end of the 12-count bin

    def test_dip_truncates_peak_without_grace(self):
        peaks = run_detector(self.BURST, close_grace_bins=0)
        assert len(peaks) == 1
        # The window closes at the dip; the 185/170/150 tail is lost.
        assert peaks[0].end == self.DIP_END

    def test_grace_rides_out_the_dip(self):
        peaks = run_detector(self.BURST, close_grace_bins=2)
        assert len(peaks) == 1
        assert peaks[0].apex_count == 200.0
        assert peaks[0].end > self.DIP_END + 2 * 60.0

    def test_cap_still_closes_immediately(self):
        counts = FLAT + [200.0] * 40
        peaks = run_detector(counts, close_grace_bins=5, max_duration_bins=8)
        assert peaks[0].closed


class TestMinLift:
    # Busy flat baseline at 50/bin: the EWMA floors meandev at 1.0, so a
    # +20 Poisson wobble scores a huge deviation — but is only 1.4× the
    # mean. min_lift=1.5 calls it noise; a real 10× burst still opens.
    BUSY = [50.0] * 20

    def test_small_lift_spike_rejected(self):
        peaks = run_detector(self.BUSY + [70.0] + self.BUSY, min_lift=1.5)
        assert peaks == []

    def test_small_lift_spike_opens_without_the_knob(self):
        peaks = run_detector(self.BUSY + [70.0] + self.BUSY)
        assert len(peaks) == 1

    def test_real_burst_still_opens(self):
        peaks = run_detector(self.BUSY + [500.0, 450.0] + self.BUSY, min_lift=1.5)
        assert len(peaks) == 1
        assert peaks[0].apex_count == 500.0
