"""Regression: the bin that *closes* a peak is absorbed at peak_alpha.

The EWMA update factor used to be chosen after the close was processed,
so the closing bin — still part of the burst — fell back to the slow
alpha, leaving the baseline inflated and suppressing a quick second
burst.
"""

from __future__ import annotations

import pytest

from repro.twitinfo.peaks import PeakDetector, PeakDetectorParams


def _warmed_detector() -> PeakDetector:
    """Baseline of quiet bins so the estimates have settled."""
    detector = PeakDetector(bin_seconds=60.0)
    for index in range(20):
        detector.update(index * 60.0, 10.0)
    return detector


def test_closing_bin_uses_peak_alpha():
    detector = _warmed_detector()
    params: PeakDetectorParams = detector.params

    opened = detector.update(20 * 60.0, 100.0)
    assert opened is not None

    mean_before = detector.mean
    meandev_before = detector.meandev
    detector.update(21 * 60.0, 10.0)  # recedes to baseline: closes the peak
    assert detector.peaks[0].closed
    assert detector._open is None

    # The closing bin must blend at peak_alpha, not the slow alpha.
    alpha = params.peak_alpha
    assert detector.mean == pytest.approx(
        alpha * 10.0 + (1 - alpha) * mean_before
    )
    assert detector.meandev == pytest.approx(
        max(1.0, alpha * abs(10.0 - mean_before) + (1 - alpha) * meandev_before)
    )


def test_two_quick_bursts_both_register():
    detector = _warmed_detector()
    bins = [100.0, 10.0]        # burst A: opens, then closes
    bins += [10.0] * 3          # short lull
    bins += [100.0, 10.0]       # burst B, shortly after
    for offset, count in enumerate(bins):
        detector.update((20 + offset) * 60.0, count)
    detector.finish()
    assert [p.label for p in detector.peaks] == ["A", "B"]
    assert all(p.closed for p in detector.peaks)
    assert detector.peaks[1].apex_count == 100.0
