"""Streaming mean-deviation peak detection."""

import pytest

from repro.twitinfo.peaks import Peak, PeakDetector, PeakDetectorParams, _peak_label


def bins_from(counts, bin_seconds=60.0, start=0.0):
    return [(start + i * bin_seconds, float(c)) for i, c in enumerate(counts)]


def flat(n, level=20):
    return [level] * n


def test_flat_stream_has_no_peaks():
    detector = PeakDetector()
    peaks = detector.run(bins_from(flat(100)))
    assert peaks == []


def test_single_spike_detected():
    counts = flat(30) + [200, 400, 300, 120, 40, 25] + flat(30)
    detector = PeakDetector()
    peaks = detector.run(bins_from(counts))
    assert len(peaks) == 1
    peak = peaks[0]
    assert peak.label == "A"
    assert peak.apex_count == 400.0
    assert peak.start == 30 * 60.0
    assert peak.closed


def test_spike_apex_time_recorded():
    counts = flat(20) + [100, 500, 200] + flat(20)
    peaks = PeakDetector().run(bins_from(counts))
    assert peaks[0].apex_time == 21 * 60.0


def test_consecutive_spikes_both_detected():
    """The faster in-peak alpha lets the baseline recover between events —
    two goals minutes apart must both flag (Figure 1 shows exactly this)."""
    counts = (
        flat(30)
        + [300, 500, 250, 100, 40]
        + flat(10)
        + [350, 550, 280, 120, 45]
        + flat(30)
    )
    peaks = PeakDetector().run(bins_from(counts))
    assert len(peaks) == 2
    assert [p.label for p in peaks] == ["A", "B"]


def test_min_count_suppresses_noise_peaks():
    # Doubling from 2 to 6 tweets/bin is statistically a spike but below
    # min_count — it must not flag.
    counts = [2] * 30 + [6, 7, 6] + [2] * 30
    params = PeakDetectorParams(min_count=10.0)
    peaks = PeakDetector(params=params).run(bins_from(counts))
    assert peaks == []


def test_tau_controls_sensitivity():
    # Noisy baseline (meandev ≈ 10) with a moderate bump: score ≈ 4.
    noisy = [100 + (10 if i % 2 else -10) for i in range(40)]
    counts = noisy + [145] + noisy[:10]
    sensitive = PeakDetector(params=PeakDetectorParams(tau=2.0)).run(bins_from(counts))
    strict = PeakDetector(params=PeakDetectorParams(tau=8.0)).run(bins_from(counts))
    assert len(sensitive) >= 1
    assert strict == []


def test_max_duration_caps_window():
    counts = flat(30) + [500] * 100 + flat(10)
    params = PeakDetectorParams(max_duration_bins=10)
    peaks = PeakDetector(params=params).run(bins_from(counts))
    first = peaks[0]
    assert (first.end - first.start) / 60.0 <= 10


def test_open_peak_closed_by_finish():
    counts = flat(30) + [400, 500, 600]  # stream ends mid-peak
    detector = PeakDetector()
    for bin_start, count in bins_from(counts):
        detector.update(bin_start, count)
    assert not detector.peaks[0].closed
    detector.finish()
    assert detector.peaks[0].closed


def test_update_returns_peak_only_on_open():
    detector = PeakDetector()
    opened = []
    for bin_start, count in bins_from(flat(30) + [500, 400] + flat(5)):
        result = detector.update(bin_start, count)
        if result is not None:
            opened.append(result)
    assert len(opened) == 1


def test_peak_contains_and_window():
    peak = Peak("A", start=60.0, apex_time=120.0, apex_count=10,
                end=240.0, onset_mean=2.0, score=3.0)
    assert peak.window == (60.0, 240.0)
    assert peak.contains(60.0)
    assert peak.contains(239.9)
    assert not peak.contains(240.0)


def test_labels_sequence():
    assert _peak_label(0) == "A"
    assert _peak_label(25) == "Z"
    assert _peak_label(26) == "AA"
    assert _peak_label(27) == "AB"


def test_params_validation():
    with pytest.raises(ValueError):
        PeakDetectorParams(alpha=0.0)
    with pytest.raises(ValueError):
        PeakDetectorParams(tau=-1.0)
    with pytest.raises(ValueError):
        PeakDetectorParams(max_duration_bins=0)


def test_mean_tracks_baseline():
    detector = PeakDetector()
    detector.run(bins_from(flat(100, level=50)))
    assert detector.mean == pytest.approx(50.0, rel=0.05)


def test_gradual_rise_no_peak():
    """A slow linear climb is a trend, not a peak."""
    counts = [20 + i * 0.4 for i in range(200)]
    peaks = PeakDetector().run(bins_from(counts))
    assert peaks == []
