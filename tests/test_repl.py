"""The interactive REPL loop, driven through a scripted stdin."""

import pytest

from repro import TweeQL
from repro.cli import repl


def run_repl(session, lines, capsys, monkeypatch):
    feed = iter(lines)

    def fake_input(_prompt):
        try:
            return next(feed)
        except StopIteration:
            raise EOFError

    monkeypatch.setattr("builtins.input", fake_input)
    repl(session, rows=5)
    return capsys.readouterr().out


@pytest.fixture()
def session(soccer):
    return TweeQL.for_scenarios(soccer, seed=11)


def test_repl_runs_query(session, capsys, monkeypatch):
    out = run_repl(
        session,
        ["SELECT text FROM twitter WHERE text contains 'tevez';", ".quit"],
        capsys, monkeypatch,
    )
    assert "text=" in out
    assert "row(s)" in out


def test_repl_multiline_query(session, capsys, monkeypatch):
    out = run_repl(
        session,
        [
            "SELECT text FROM twitter",
            "WHERE text contains 'tevez';",
            ".quit",
        ],
        capsys, monkeypatch,
    )
    assert "text=" in out


def test_repl_help_and_examples(session, capsys, monkeypatch):
    out = run_repl(session, [".help", ".examples", ".quit"], capsys, monkeypatch)
    assert ".explain" in out
    assert "obama" in out  # pre-built queries shown


def test_repl_schema_and_functions(session, capsys, monkeypatch):
    out = run_repl(session, [".schema", ".functions", ".quit"], capsys, monkeypatch)
    assert "twitter(" in out
    assert "sentiment" in out


def test_repl_explain(session, capsys, monkeypatch):
    out = run_repl(
        session,
        [".explain SELECT text FROM twitter WHERE text contains 'goal';", ".quit"],
        capsys, monkeypatch,
    )
    assert "track(goal)" in out


def test_repl_reports_errors_and_continues(session, capsys, monkeypatch):
    out = run_repl(
        session,
        [
            "SELECT COUNT(*) FROM twitter;",  # aggregate without window
            "SELECT text FROM twitter WHERE text contains 'tevez' LIMIT 1;",
            ".quit",
        ],
        capsys, monkeypatch,
    )
    assert "error:" in out
    assert "text=" in out  # recovered


def test_repl_unknown_dot_command(session, capsys, monkeypatch):
    out = run_repl(session, [".bogus", ".quit"], capsys, monkeypatch)
    assert "unknown command" in out


def test_repl_eof_exits(session, capsys, monkeypatch):
    out = run_repl(session, [], capsys, monkeypatch)
    assert "TweeQL demo shell" in out
