"""Shared fixtures.

Workload generation is the expensive part of testing this library, so the
population and scenarios are session-scoped: every test sees the same
deterministic data (seed 11) without regenerating it. Tests that need
different parameters build their own small scenarios.
"""

from __future__ import annotations

import pytest

from repro import EngineConfig, TweeQL
from repro.twitter.users import UserPopulation
from repro.twitter.workloads import (
    background_chatter,
    bot_flood_scenario,
    breaking_news_cascade_scenario,
    earthquake_scenario,
    election_night_scenario,
    news_month_scenario,
    soccer_match_scenario,
)

SEED = 11


@pytest.fixture(scope="session")
def population():
    """A small shared synthetic user population."""
    return UserPopulation(size=1200, seed=SEED)


@pytest.fixture(scope="session")
def soccer(population):
    """A reduced-intensity soccer match (~6k tweets)."""
    return soccer_match_scenario(seed=SEED, population=population, intensity=0.4)


@pytest.fixture(scope="session")
def quakes(population):
    """A reduced-intensity earthquake day (~? tweets)."""
    return earthquake_scenario(seed=SEED, population=population, intensity=0.25)


@pytest.fixture(scope="session")
def news_week(population):
    """One week of news at low intensity."""
    return news_month_scenario(
        seed=SEED, population=population, days=7, n_stories=3, intensity=0.3
    )


@pytest.fixture(scope="session")
def election_small(population):
    """A reduced election night (~12k tweets, 5 truth events)."""
    return election_night_scenario(seed=SEED, population=population, intensity=0.12)


@pytest.fixture(scope="session")
def cascade_small(population):
    """A reduced breaking-news cascade (~8k tweets, 4 waves)."""
    return breaking_news_cascade_scenario(
        seed=SEED, population=population, intensity=0.2
    )


@pytest.fixture(scope="session")
def botflood_small(population):
    """A reduced bot flood (~8k tweets, launch + 2 floods)."""
    return bot_flood_scenario(seed=SEED, population=population, intensity=0.12)


@pytest.fixture(scope="session")
def chatter(population):
    """An hour of topic-free chatter."""
    return background_chatter(seed=SEED, population=population, duration=1800.0, rate=3.0)


@pytest.fixture()
def soccer_session(soccer):
    """A fresh TweeQL session over the shared soccer scenario."""
    return TweeQL.for_scenarios(soccer, seed=SEED)


@pytest.fixture()
def session_factory(soccer, quakes, news_week, chatter):
    """Build sessions with custom configs over the shared scenarios."""
    scenarios = {
        "soccer": soccer,
        "quakes": quakes,
        "news": news_week,
        "chatter": chatter,
    }

    def build(*names: str, config: EngineConfig | None = None) -> TweeQL:
        chosen = [scenarios[name] for name in (names or ("soccer",))]
        return TweeQL.for_scenarios(*chosen, config=config, seed=SEED)

    return build
