"""Sentiment classifier: training, inference, accuracy on ground truth."""

import pytest

from repro.nlp.corpus import (
    LabeledTweet,
    has_emoticon_label,
    training_corpus,
)
from repro.nlp.corpus import test_corpus as heldout_corpus
from repro.nlp.sentiment import SentimentClassifier, train_default_classifier


@pytest.fixture(scope="module")
def classifier():
    return train_default_classifier(corpus_size=3000, seed=4)


def test_corpus_labels_are_binary():
    for example in training_corpus(size=200, seed=1):
        assert example.label in (-1, 1)


def test_corpus_deterministic():
    a = training_corpus(size=50, seed=2)
    b = training_corpus(size=50, seed=2)
    assert [e.text for e in a] == [e.text for e in b]


def test_emoticon_label_extraction():
    assert has_emoticon_label("great day :)") == 1
    assert has_emoticon_label("bad day :(") == -1
    assert has_emoticon_label("meh day") is None
    assert has_emoticon_label("mixed :) :(") is None


def test_untrained_raises():
    with pytest.raises(RuntimeError):
        SentimentClassifier().log_odds("text")


def test_training_requires_both_classes():
    classifier = SentimentClassifier()
    with pytest.raises(ValueError):
        classifier.train([LabeledTweet("good", 1)])


def test_training_rejects_neutral_labels():
    classifier = SentimentClassifier()
    with pytest.raises(ValueError):
        classifier.train([LabeledTweet("meh", 0), LabeledTweet("good", 1)])


def test_emoticon_rule_dominates(classifier):
    assert classifier.classify("whatever happened :)") == 1
    assert classifier.classify("whatever happened :(") == -1


def test_phrase_based_classification(classifier):
    assert classifier.classify("this is absolutely brilliant, so happy") == 1
    assert classifier.classify("what a disaster, gutted and furious") == -1


def test_neutral_band(classifier):
    assert classifier.classify("watching the news now") == 0


def test_score_signed_and_bounded(classifier):
    assert classifier.score("so happy, love it :)") == 1.0
    assert classifier.score("terrible, hate this :(") == -1.0
    assert -1.0 <= classifier.score("just watching stuff") <= 1.0


def test_accuracy_on_ground_truth(classifier):
    """Distant supervision must generalize to composer ground truth."""
    examples = heldout_corpus(size=600, seed=4)
    metrics = classifier.evaluate(examples)
    # 2011-era tweet sentiment classifiers sat in this band too — the
    # TwitInfo paper's recall correction exists precisely because per-class
    # recall was imperfect.
    assert metrics["accuracy"] > 0.6
    assert metrics["recall_positive"] > 0.5
    assert metrics["recall_negative"] > 0.55
    assert metrics["recall_neutral"] > 0.55


def test_vocabulary_nonempty(classifier):
    assert classifier.vocabulary_size > 100


def test_default_classifier_memoized():
    a = train_default_classifier(corpus_size=500, seed=9)
    b = train_default_classifier(corpus_size=500, seed=9)
    assert a is b


def test_unseen_tokens_are_neutral_signal(classifier):
    odds_empty = classifier.log_odds("")
    odds_unseen = classifier.log_odds("zzz qqq xxyyzz")
    assert odds_empty == pytest.approx(odds_unseen)
