"""Tweet-aware tokenizer."""

from repro.nlp.tokenize import STOPWORDS, content_tokens, tokenize


def test_lowercases_words():
    assert tokenize("Hello World") == ["hello", "world"]


def test_hashtag_body_kept():
    assert "mcfc" in tokenize("GOAL #mcfc")


def test_mentions_dropped():
    assert "ref" not in tokenize("@ref that was a foul")


def test_urls_dropped():
    tokens = tokenize("see http://bit.ly/abc now")
    assert all("http" not in t and "bit" not in t for t in tokens)


def test_score_pattern_preserved():
    assert "3-0" in tokenize("tevez makes it 3-0")


def test_multiple_scores():
    tokens = tokenize("from 1-0 to 2-0")
    assert "1-0" in tokens and "2-0" in tokens


def test_emoticons_kept_by_default():
    assert ":(" in tokenize("so sad :(")


def test_emoticons_strippable():
    assert ":(" not in tokenize("so sad :(", keep_emoticons=False)


def test_apostrophes_kept_in_words():
    assert "can't" in tokenize("I can't even")


def test_content_tokens_drop_stopwords():
    tokens = content_tokens("this is the best goal of the match")
    assert "the" not in tokens
    assert "goal" in tokens
    assert "match" in tokens


def test_content_tokens_drop_single_chars():
    assert "a" not in content_tokens("a goal")


def test_content_tokens_no_emoticons():
    assert ":(" not in content_tokens("bad day :(")


def test_stopwords_reasonable():
    assert "the" in STOPWORDS
    assert "goal" not in STOPWORDS


def test_empty_text():
    assert tokenize("") == []
    assert content_tokens("") == []
