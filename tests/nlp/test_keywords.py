"""TF-IDF key-term extraction."""

from repro.nlp.keywords import KeywordExtractor


def corpus_background(extractor, n=200):
    for i in range(n):
        extractor.observe(f"routine match commentary number {i % 7} today")


def test_peak_terms_beat_background():
    extractor = KeywordExtractor()
    corpus_background(extractor)
    peak_texts = [
        "GOAL tevez makes it 3-0", "tevez scores 3-0 what a goal",
        "3-0 tevez unbelievable", "tevez!!! 3-0",
    ]
    terms = [t.term for t in extractor.extract(peak_texts, k=3)]
    assert "tevez" in terms
    assert "3-0" in terms
    assert "commentary" not in terms


def test_min_frequency_suppresses_one_offs():
    extractor = KeywordExtractor()
    corpus_background(extractor)
    texts = ["tevez scores", "tevez again", "random onlooker word"]
    terms = [t.term for t in extractor.extract(texts, k=5, min_frequency=2)]
    assert "tevez" in terms
    assert "onlooker" not in terms


def test_idf_decreases_with_document_frequency():
    extractor = KeywordExtractor()
    for _ in range(50):
        extractor.observe("common word everywhere")
    extractor.observe("rare gem")
    assert extractor.idf("gem") > extractor.idf("common")


def test_scores_sorted_descending():
    extractor = KeywordExtractor()
    corpus_background(extractor)
    scored = extractor.extract(
        ["alpha beta", "alpha beta", "alpha gamma", "alpha"], k=5, min_frequency=1
    )
    values = [t.score for t in scored]
    assert values == sorted(values, reverse=True)


def test_term_frequency_is_document_level():
    """A term repeated inside one tweet counts once (set semantics)."""
    extractor = KeywordExtractor()
    corpus_background(extractor)
    scored = extractor.extract(["spam spam spam spam", "ham"], k=5, min_frequency=1)
    by_term = {t.term: t.frequency for t in scored}
    assert by_term["spam"] == 1


def test_empty_window():
    extractor = KeywordExtractor()
    corpus_background(extractor)
    assert extractor.extract([], k=5) == []


def test_documents_counter():
    extractor = KeywordExtractor()
    extractor.observe_all(["a b", "c d"])
    assert extractor.documents == 2
