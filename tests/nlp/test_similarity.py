"""Cosine similarity and ranking."""

import pytest

from repro.nlp.keywords import KeywordExtractor
from repro.nlp.similarity import cosine_similarity, rank_by_similarity


def test_cosine_identical():
    v = {"a": 1.0, "b": 2.0}
    assert cosine_similarity(v, dict(v)) == pytest.approx(1.0)


def test_cosine_orthogonal():
    assert cosine_similarity({"a": 1.0}, {"b": 1.0}) == 0.0


def test_cosine_empty():
    assert cosine_similarity({}, {"a": 1.0}) == 0.0


def test_cosine_symmetric():
    left = {"a": 1.0, "b": 3.0}
    right = {"b": 2.0, "c": 1.0}
    assert cosine_similarity(left, right) == pytest.approx(
        cosine_similarity(right, left)
    )


def test_rank_orders_by_topical_overlap():
    items = [
        "the weather is nice today",
        "tevez scored a goal for manchester",
        "goal goal goal tevez tevez",
    ]
    ranked = rank_by_similarity(items, ["tevez", "goal"], text_of=lambda s: s)
    assert ranked[0][0] == items[2]
    assert ranked[-1][0] == items[0]
    assert ranked[-1][1] == 0.0


def test_rank_limit():
    items = ["a b", "a c", "a d"]
    ranked = rank_by_similarity(items, ["a"], text_of=lambda s: s, limit=2)
    assert len(ranked) == 2


def test_rank_stable_for_ties():
    items = ["goal one", "goal two"]
    ranked = rank_by_similarity(items, ["goal"], text_of=lambda s: s)
    assert [item for item, _s in ranked] == items


def test_idf_weighting_changes_ranking():
    extractor = KeywordExtractor()
    for _ in range(100):
        extractor.observe("match talk about the match")
    extractor.observe("tevez scored")
    items = [
        "match match match",  # only the ubiquitous term
        "tevez scored",       # the rare, informative term
    ]
    query = ["tevez", "match"]
    without_idf = rank_by_similarity(items, query, text_of=lambda s: s)
    with_idf = rank_by_similarity(
        items, query, text_of=lambda s: s, extractor=extractor
    )
    # Raw counts favor the repetitive common-term tweet; IDF flips the
    # ranking toward the rare-term tweet.
    assert without_idf[0][0] == "match match match"
    assert with_idf[0][0] == "tevez scored"
