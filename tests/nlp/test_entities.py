"""Simulated OpenCalais entity extraction."""

import pytest

from repro.nlp.entities import Entity, EntityExtractor


@pytest.fixture(scope="module")
def extractor():
    return EntityExtractor()


def test_person(extractor):
    entities = extractor.extract("obama spoke to congress")
    assert Entity("obama", "Person") in entities
    assert Entity("congress", "Organization") in entities


def test_city(extractor):
    entities = extractor.extract("earthquake near Tokyo today")
    assert Entity("Tokyo", "City") in entities


def test_longest_match_wins(extractor):
    entities = extractor.extract("manchester city dominating")
    types = {e.text: e.type for e in entities}
    assert "manchester city" in types
    assert "Manchester" not in types  # absorbed by the organization


def test_case_insensitive(extractor):
    assert extractor.extract("TEVEZ scores!") == [Entity("tevez", "Person")]


def test_word_boundaries(extractor):
    # 'hart' must not match inside 'heart'.
    assert Entity("hart", "Person") not in extractor.extract("my heart aches")


def test_no_entities(extractor):
    assert extractor.extract("nothing notable here") == []


def test_service_resolver_form(extractor):
    strings = extractor("obama visits Boston")
    assert "obama/Person" in strings
    assert "Boston/City" in strings


def test_dedup(extractor):
    entities = extractor.extract("tevez tevez tevez")
    assert entities == [Entity("tevez", "Person")]
