"""Virtual clock semantics."""

import pytest

from repro.clock import DEFAULT_EPOCH, VirtualClock, format_timestamp


def test_starts_at_epoch():
    clock = VirtualClock()
    assert clock.now == DEFAULT_EPOCH


def test_advance_moves_forward():
    clock = VirtualClock(start=100.0)
    clock.advance(5.0)
    assert clock.now == 105.0


def test_advance_to_exact():
    clock = VirtualClock(start=100.0)
    clock.advance_to(142.5)
    assert clock.now == 142.5


def test_cannot_go_backwards():
    clock = VirtualClock(start=100.0)
    with pytest.raises(ValueError):
        clock.advance(-1.0)
    with pytest.raises(ValueError):
        clock.advance_to(99.0)


def test_advance_zero_is_noop():
    clock = VirtualClock(start=100.0)
    clock.advance(0.0)
    assert clock.now == 100.0


def test_callbacks_fire_in_deadline_order():
    clock = VirtualClock(start=0.0)
    fired = []
    clock.call_at(5.0, lambda: fired.append("b"))
    clock.call_at(3.0, lambda: fired.append("a"))
    clock.call_at(9.0, lambda: fired.append("c"))
    clock.advance_to(6.0)
    assert fired == ["a", "b"]
    assert clock.pending_count == 1
    clock.flush()
    assert fired == ["a", "b", "c"]
    assert clock.now == 9.0


def test_callback_sees_its_own_deadline():
    clock = VirtualClock(start=0.0)
    seen = []
    clock.call_at(4.0, lambda: seen.append(clock.now))
    clock.advance_to(10.0)
    assert seen == [4.0]
    assert clock.now == 10.0


def test_callback_scheduled_in_past_fires_on_next_advance():
    clock = VirtualClock(start=50.0)
    fired = []
    clock.call_at(10.0, lambda: fired.append(True))
    clock.advance(0.0)
    assert fired == [True]


def test_callback_may_schedule_more_work():
    clock = VirtualClock(start=0.0)
    fired = []

    def first():
        fired.append("first")
        clock.call_at(clock.now + 1.0, lambda: fired.append("second"))

    clock.call_at(2.0, first)
    clock.advance_to(10.0)
    assert fired == ["first", "second"]


def test_ties_fire_in_scheduling_order():
    clock = VirtualClock(start=0.0)
    fired = []
    clock.call_at(1.0, lambda: fired.append(1))
    clock.call_at(1.0, lambda: fired.append(2))
    clock.flush()
    assert fired == [1, 2]


def test_format_timestamp():
    assert format_timestamp(DEFAULT_EPOCH) == "2011-06-12 00:00:00"


def test_datetime_is_utc():
    clock = VirtualClock()
    moment = clock.datetime()
    assert moment.utcoffset().total_seconds() == 0
    assert moment.year == 2011
