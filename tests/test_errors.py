"""Exception hierarchy contracts."""

import pytest

from repro import errors


def test_everything_derives_from_tweeql_error():
    for name in (
        "LexError", "ParseError", "PlanError", "ExecutionError",
        "UnknownFunctionError", "UnknownSourceError", "UnknownFieldError",
        "StreamError", "RateLimitError", "ServiceError", "GeocodeError",
        "StorageError",
    ):
        cls = getattr(errors, name)
        assert issubclass(cls, errors.TweeQLError), name


def test_lex_error_position():
    exc = errors.LexError("bad", position=7)
    assert exc.position == 7


def test_parse_error_token_and_position():
    exc = errors.ParseError("bad", token="FROM", position=3)
    assert exc.token == "FROM"
    assert exc.position == 3


def test_unknown_function_message():
    exc = errors.UnknownFunctionError("frobnicate")
    assert "frobnicate" in str(exc)
    assert exc.name == "frobnicate"


def test_unknown_field_lists_available():
    exc = errors.UnknownFieldError("bogus", available=("text", "loc"))
    assert "text" in str(exc)
    assert exc.available == ("text", "loc")


def test_unknown_source():
    exc = errors.UnknownSourceError("nowhere")
    assert "nowhere" in str(exc)


def test_geocode_error_is_service_error():
    exc = errors.GeocodeError("the moon")
    assert isinstance(exc, errors.ServiceError)
    assert exc.location == "the moon"


def test_rate_limit_retry_after():
    exc = errors.RateLimitError("slow down", retry_after=30.0)
    assert isinstance(exc, errors.StreamError)
    assert exc.retry_after == 30.0


def test_one_base_class_catches_all(soccer_session):
    from repro.errors import TweeQLError

    with pytest.raises(TweeQLError):
        soccer_session.query("SELECT FROM;")
    with pytest.raises(TweeQLError):
        soccer_session.query("SELECT nosuchfn(text) FROM twitter;")
    with pytest.raises(TweeQLError):
        soccer_session.query("SELECT x FROM nowhere;")