"""Space-Saving top-k sketch."""

import random

import pytest

from repro.storage.topk import SpaceSaving


def test_exact_when_under_capacity():
    sketch = SpaceSaving(capacity=10)
    for item, count in (("a", 5), ("b", 3), ("c", 1)):
        for _ in range(count):
            sketch.add(item)
    top = sketch.top(3)
    assert [(t.item, t.count, t.error) for t in top] == [
        ("a", 5, 0), ("b", 3, 0), ("c", 1, 0),
    ]


def test_overestimate_never_underestimates():
    """Space-Saving guarantee: estimate >= true count for tracked items."""
    rng = random.Random(1)
    items = [f"url{i}" for i in range(200)]
    weights = [1.0 / (i + 1) for i in range(200)]
    true_counts: dict[str, int] = {}
    sketch = SpaceSaving(capacity=20)
    for _ in range(5000):
        item = rng.choices(items, weights=weights, k=1)[0]
        true_counts[item] = true_counts.get(item, 0) + 1
        sketch.add(item)
    for entry in sketch.top(20):
        assert entry.count >= true_counts.get(entry.item, 0)
        assert entry.guaranteed <= true_counts.get(entry.item, 0)


def test_heavy_hitters_survive():
    rng = random.Random(2)
    sketch = SpaceSaving(capacity=10)
    for i in range(3000):
        sketch.add("heavy" if rng.random() < 0.4 else f"light{i}")
    top = sketch.top(1)
    assert top[0].item == "heavy"


def test_error_bound():
    """Max error is observed / capacity."""
    rng = random.Random(3)
    sketch = SpaceSaving(capacity=50)
    for i in range(4000):
        sketch.add(f"item{rng.randint(0, 500)}")
    bound = sketch.observed / 50
    for entry in sketch.top(50):
        assert entry.error <= bound


def test_weight_param():
    sketch = SpaceSaving(capacity=4)
    sketch.add("a", weight=7)
    assert sketch.top(1)[0].count == 7
    with pytest.raises(ValueError):
        sketch.add("a", weight=0)


def test_capacity_respected():
    sketch = SpaceSaving(capacity=5)
    for i in range(100):
        sketch.add(f"i{i}")
    assert len(sketch) == 5


def test_ties_break_deterministically():
    sketch = SpaceSaving(capacity=10)
    sketch.add("b")
    sketch.add("a")
    top = sketch.top(2)
    assert [t.item for t in top] == ["a", "b"]


def test_invalid_capacity():
    with pytest.raises(ValueError):
        SpaceSaving(capacity=0)
