"""The historical tier: indexes, writer, and three-backend equivalence.

The Hypothesis suite pins ``MemoryTweetLog`` ≡ ``SqliteTweetLog`` ≡
``HistoricalStore`` on ``scan`` / ``count`` / ``counts_by_bucket`` over
random tweet sets, including out-of-order and equal-timestamp appends —
the contract the planner's backfill split relies on (history must read
back in exactly the order a live scan would have produced).
"""

from __future__ import annotations

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import (
    HistoricalStore,
    MemoryTweetLog,
    SqliteTweetLog,
    StorageWriter,
)
from repro.twitter.models import Tweet, User


def make_tweet(tweet_id, t, text="hello world", geo=None):
    return Tweet(
        tweet_id=tweet_id,
        created_at=t,
        user=User(
            user_id=10_000 + tweet_id,
            screen_name=f"u{tweet_id}",
            location="Boston",
            home=(42.36, -71.06),
            geo_enabled=bool(geo),
        ),
        text=text,
        geo=geo,
        ground_truth={},
    )


# ---------------------------------------------------------------------------
# HistoricalStore features
# ---------------------------------------------------------------------------


def test_watermark_empty_and_populated():
    with HistoricalStore(":memory:") as store:
        assert store.watermark() is None
        store.extend([make_tweet(1, 10.0), make_tweet(2, 30.0)])
        assert store.watermark() == 30.0


def test_partitions_follow_created_at():
    with HistoricalStore(":memory:", partition_seconds=100.0) as store:
        store.extend(
            [make_tweet(1, 10.0), make_tweet(2, 150.0), make_tweet(3, 160.0)]
        )
        assert store.partitions() == [(0.0, 1), (100.0, 2)]


def test_search_text_matches_scan_filter():
    with HistoricalStore(":memory:") as store:
        store.extend(
            [
                make_tweet(1, 10.0, "earthquake in chile"),
                make_tweet(2, 20.0, "soccer goal"),
                make_tweet(3, 30.0, "another EARTHQUAKE report"),
            ]
        )
        hits = [t.tweet_id for t in store.search_text("earthquake")]
        assert hits == [1, 3]
        # Time bounds compose with the text match.
        assert [t.tweet_id for t in store.search_text("earthquake", 15.0)] == [3]


def test_search_text_fallback_without_fts():
    with HistoricalStore(":memory:") as store:
        store.extend([make_tweet(1, 10.0, "quake"), make_tweet(2, 20.0, "ball")])
        store.fts_enabled = False  # force the LIKE/scan fallback
        assert [t.tweet_id for t in store.search_text("quake")] == [1]


def test_search_box_matches_scan_filter():
    with HistoricalStore(":memory:") as store:
        store.extend(
            [
                make_tweet(1, 10.0, geo=(35.0, -71.0)),
                make_tweet(2, 20.0, geo=(10.0, 10.0)),
                make_tweet(3, 30.0),  # not geotagged
            ]
        )
        expected = [1]
        assert [
            t.tweet_id for t in store.search_box(30.0, 40.0, -80.0, -60.0)
        ] == expected
        store.rtree_enabled = False  # force the Python fallback
        assert [
            t.tweet_id for t in store.search_box(30.0, 40.0, -80.0, -60.0)
        ] == expected


def test_metrics_snapshots_round_trip():
    with HistoricalStore(":memory:") as store:
        wrote = store.record_metrics(
            0.0, 60.0, {"rows": 5, "ratio": 0.5, "label": "skipped"}, label="ev"
        )
        assert wrote == 2  # the string value is skipped
        store.record_metrics(60.0, 120.0, {"rows": 9}, label="ev")
        series = store.metrics_series(label="ev", name="rows")
        assert [(s["window_start"], s["value"]) for s in series] == [
            (0.0, 5.0),
            (60.0, 9.0),
        ]
        # Re-recording the same window replaces the sample.
        store.record_metrics(0.0, 60.0, {"rows": 7}, label="ev")
        series = store.metrics_series(label="ev", name="rows")
        assert series[0]["value"] == 7.0


def test_store_file_round_trip(tmp_path):
    path = str(tmp_path / "hist.db")
    with HistoricalStore(path) as store:
        store.extend([make_tweet(i, float(i), geo=(1.0, 2.0)) for i in range(5)])
        store.record_metrics(0.0, 5.0, {"rows": 5})
    with HistoricalStore(path) as reopened:
        assert len(reopened) == 5
        assert reopened.watermark() == 4.0
        assert reopened.metrics_series()[0]["value"] == 5.0


def test_historical_store_upgrades_plain_log(tmp_path):
    """Opening a plain SqliteTweetLog file as a HistoricalStore backfills
    the partition column for pre-existing rows."""
    path = str(tmp_path / "old.db")
    with SqliteTweetLog(path) as old:
        old.extend([make_tweet(1, 50.0), make_tweet(2, 150.0)])
    with HistoricalStore(path, partition_seconds=100.0) as store:
        assert store.partitions() == [(0.0, 1), (100.0, 1)]


# ---------------------------------------------------------------------------
# StorageWriter
# ---------------------------------------------------------------------------


def test_writer_archives_behind_the_live_path():
    with HistoricalStore(":memory:") as store:
        writer = StorageWriter(store, batch_size=8)
        for i in range(100):
            assert writer.write(make_tweet(i, float(i)))
        writer.flush()
        assert len(store) == 100
        assert writer.metrics()["written"] == 100
        assert writer.metrics()["dropped"] == 0
        writer.stop()


def test_writer_drops_when_queue_full_never_blocks():
    class SlowStore:
        def __init__(self):
            self.release = threading.Event()
            self.rows = []

        def extend(self, tweets, commit=True):
            self.release.wait(5.0)
            self.rows.extend(tweets)

        def commit(self):
            pass

    slow = SlowStore()
    writer = StorageWriter(slow, batch_size=1, capacity=4)
    accepted = sum(writer.write(make_tweet(i, float(i))) for i in range(50))
    assert accepted < 50  # the bounded queue refused the overflow...
    assert writer.metrics()["dropped"] == 50 - accepted
    slow.release.set()  # ...without ever blocking the producer
    writer.stop()
    assert len(slow.rows) == accepted


def test_writer_stop_is_idempotent_and_flushes():
    with HistoricalStore(":memory:") as store:
        writer = StorageWriter(store, batch_size=1000)
        writer.write(make_tweet(1, 1.0))
        writer.stop()
        writer.stop()
        assert len(store) == 1


# ---------------------------------------------------------------------------
# Hypothesis: Memory ≡ Sqlite ≡ Historical
# ---------------------------------------------------------------------------

#: Random tweet sets with deliberately colliding timestamps (small value
#: pool) and shuffled insertion order.
tweet_sets = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=50),  # timestamp pool → ties
        st.booleans(),  # geotagged?
    ),
    min_size=0,
    max_size=40,
).map(
    lambda pairs: [
        make_tweet(
            index + 1,
            float(t),
            text=f"tweet {index} quake" if index % 3 == 0 else f"tweet {index}",
            geo=(40.0 + index * 0.01, -70.0) if geotagged else None,
        )
        for index, (t, geotagged) in enumerate(pairs)
    ]
)

windows = st.tuples(
    st.one_of(st.none(), st.floats(min_value=-5.0, max_value=55.0)),
    st.one_of(st.none(), st.floats(min_value=-5.0, max_value=55.0)),
)


def _backends(tweets):
    memory = MemoryTweetLog()
    memory.extend(tweets)
    sqlite_log = SqliteTweetLog(":memory:", commit_every=3)
    historical = HistoricalStore(":memory:", partition_seconds=10.0)
    for tweet in tweets:  # single-row appends exercise the commit batching
        sqlite_log.append(tweet)
        historical.append(tweet)
    return memory, sqlite_log, historical


@settings(max_examples=40, deadline=None)
@given(tweets=tweet_sets, window=windows)
def test_three_backends_agree_on_scan_count_buckets(tweets, window):
    start, end = window
    memory, sqlite_log, historical = _backends(tweets)
    try:
        reference = [t.tweet_id for t in memory.scan(start, end)]
        for backend in (sqlite_log, historical):
            assert [t.tweet_id for t in backend.scan(start, end)] == reference
            assert backend.count(start, end) == memory.count(start, end)
        buckets_ref = memory.counts_by_bucket(0.0, 50.0, 7.0)
        for backend in (sqlite_log, historical):
            assert backend.counts_by_bucket(0.0, 50.0, 7.0) == buckets_ref
    finally:
        sqlite_log.close()
        historical.close()


@settings(max_examples=25, deadline=None)
@given(tweets=tweet_sets)
def test_scan_order_is_created_at_then_tweet_id(tweets):
    memory, sqlite_log, historical = _backends(tweets)
    try:
        expected = sorted(
            (t.created_at, t.tweet_id) for t in tweets
        )
        for backend in (memory, sqlite_log, historical):
            assert [
                (t.created_at, t.tweet_id) for t in backend.scan()
            ] == expected
    finally:
        sqlite_log.close()
        historical.close()


@settings(max_examples=20, deadline=None)
@given(tweets=tweet_sets)
def test_historical_search_matches_python_filters(tweets):
    _memory, sqlite_log, historical = _backends(tweets)
    sqlite_log.close()
    try:
        expected_text = [
            t.tweet_id for t in historical.scan() if "quake" in t.text.lower()
        ]
        assert [
            t.tweet_id for t in historical.search_text("quake")
        ] == expected_text
        expected_box = [
            t.tweet_id
            for t in historical.scan()
            if t.geo is not None
            and 39.0 <= t.geo[0] <= 41.0
            and -71.0 <= t.geo[1] <= -69.0
        ]
        assert [
            t.tweet_id
            for t in historical.search_box(39.0, 41.0, -71.0, -69.0)
        ] == expected_box
    finally:
        historical.close()
