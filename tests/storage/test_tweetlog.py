"""Tweet logs: memory and sqlite backends behave identically."""

import pytest

from repro.storage.tweetlog import MemoryTweetLog, SqliteTweetLog, TableSink
from repro.twitter.models import Tweet, User


def make_tweet(tweet_id, t, text="hello", geo=None):
    return Tweet(
        tweet_id=tweet_id,
        created_at=t,
        user=User(user_id=tweet_id, screen_name=f"u{tweet_id}", location="Boston",
                  home=(42.36, -71.06), geo_enabled=bool(geo)),
        text=text,
        geo=geo,
        ground_truth={"sentiment": 1, "topic": "t", "event_id": None,
                      "coords": (42.36, -71.06)},
    )


@pytest.fixture(params=["memory", "sqlite"])
def log(request):
    if request.param == "memory":
        yield MemoryTweetLog()
    else:
        with SqliteTweetLog(":memory:") as db:
            yield db


def test_append_and_len(log):
    log.append(make_tweet(1, 10.0))
    log.append(make_tweet(2, 20.0))
    assert len(log) == 2


def test_scan_time_range_half_open(log):
    log.extend([make_tweet(i, float(i * 10)) for i in range(1, 6)])
    scanned = [t.tweet_id for t in log.scan(20.0, 40.0)]
    assert scanned == [2, 3]


def test_scan_unbounded(log):
    log.extend([make_tweet(i, float(i)) for i in range(1, 4)])
    assert len(list(log.scan())) == 3
    assert [t.tweet_id for t in log.scan(start=2.0)] == [2, 3]
    assert [t.tweet_id for t in log.scan(end=2.0)] == [1]


def test_count_matches_scan(log):
    log.extend([make_tweet(i, float(i)) for i in range(1, 10)])
    assert log.count(3.0, 7.0) == len(list(log.scan(3.0, 7.0)))


def test_counts_by_bucket(log):
    log.extend([make_tweet(i, float(i)) for i in range(10)])
    buckets = log.counts_by_bucket(0.0, 10.0, 5.0)
    assert buckets == [(0.0, 5), (5.0, 5)]


def test_counts_by_bucket_includes_empty(log):
    log.append(make_tweet(1, 1.0))
    log.append(make_tweet(2, 11.0))
    buckets = log.counts_by_bucket(0.0, 15.0, 5.0)
    assert buckets == [(0.0, 1), (5.0, 0), (10.0, 1)]


def test_out_of_order_append_kept_sorted(log):
    log.append(make_tweet(2, 20.0))
    log.append(make_tweet(1, 10.0))
    times = [t.created_at for t in log.scan()]
    assert times == [10.0, 20.0]


def test_sqlite_round_trips_full_tweet():
    with SqliteTweetLog(":memory:") as db:
        original = make_tweet(7, 70.0, text="GOAL #mcfc", geo=(40.0, -74.0))
        db.append(original)
        restored = next(iter(db.scan()))
        assert restored.tweet_id == original.tweet_id
        assert restored.text == original.text
        assert restored.geo == original.geo
        assert restored.user.screen_name == original.user.screen_name
        assert restored.ground_truth["coords"] == (42.36, -71.06)
        assert restored.entities.hashtags == ("mcfc",)


def test_sqlite_persists_to_file(tmp_path):
    path = str(tmp_path / "tweets.db")
    with SqliteTweetLog(path) as db:
        db.extend([make_tweet(i, float(i)) for i in range(1, 4)])
    with SqliteTweetLog(path) as db:
        assert len(db) == 3


def test_bucket_validation(log):
    with pytest.raises(Exception):
        log.counts_by_bucket(0.0, 10.0, 0.0)


def test_append_commits_on_batch_threshold(tmp_path):
    """Single-row appends become durable without an explicit extend()."""
    path = str(tmp_path / "tweets.db")
    db = SqliteTweetLog(path, commit_every=4)
    for i in range(1, 5):
        db.append(make_tweet(i, float(i)))
    # Threshold reached: a second connection must see all four rows even
    # though close() was never called.
    other = SqliteTweetLog(path)
    assert len(other) == 4
    other.close()
    db.close()


def test_close_commits_partial_append_batch(tmp_path):
    """close() flushes appends below the commit threshold (the lost-write
    bug: append never committed, so rows vanished on process exit)."""
    path = str(tmp_path / "tweets.db")
    db = SqliteTweetLog(path, commit_every=1000)
    db.append(make_tweet(1, 1.0))
    db.close()
    with SqliteTweetLog(path) as other:
        assert len(other) == 1


def test_commit_barrier_makes_appends_visible(tmp_path):
    path = str(tmp_path / "tweets.db")
    with SqliteTweetLog(path, commit_every=1000) as db:
        db.append(make_tweet(1, 1.0))
        db.commit()
        with SqliteTweetLog(path) as other:
            assert len(other) == 1


def test_equal_timestamp_order_matches_across_backends():
    """Both backends order ties by (created_at, tweet_id).

    MemoryTweetLog used to keep ties in insertion order while SQLite's
    scan sorts by tweet_id — the backends disagreed row-for-row.
    """
    tweets = [
        make_tweet(5, 10.0),
        make_tweet(2, 10.0),
        make_tweet(9, 10.0),
        make_tweet(1, 20.0),
        make_tweet(7, 5.0),
    ]
    memory = MemoryTweetLog()
    memory.extend(tweets)
    with SqliteTweetLog(":memory:") as sqlite_log:
        sqlite_log.extend(tweets)
        assert [t.tweet_id for t in memory.scan()] == [
            t.tweet_id for t in sqlite_log.scan()
        ]
    assert [t.tweet_id for t in memory.scan()] == [7, 2, 5, 9, 1]


def test_equal_timestamp_range_bounds(log):
    log.extend([make_tweet(i, 10.0) for i in (3, 1, 2)])
    log.append(make_tweet(4, 20.0))
    assert [t.tweet_id for t in log.scan(10.0, 20.0)] == [1, 2, 3]
    assert log.count(10.0, 10.0) == 0
    assert log.count(10.0, 20.0) == 3


def test_sqlite_usable_from_worker_threads():
    """The connection is shared across threads (engine workers scan and
    append concurrently); this used to raise sqlite3.ProgrammingError."""
    import threading

    db = SqliteTweetLog(":memory:", commit_every=1)
    errors = []

    def work(offset):
        try:
            for i in range(50):
                db.append(make_tweet(offset + i, float(offset + i)))
            list(db.scan())
            db.count()
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=work, args=(1000 * n,)) for n in range(1, 5)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    assert len(db) == 200
    db.close()


def test_row_to_tweet_honors_stored_user_id_column():
    """The natively stored user_id column is authoritative, even when the
    JSON payload disagrees (it used to be silently ignored)."""
    with SqliteTweetLog(":memory:") as db:
        tweet = make_tweet(1, 1.0)
        db.append(tweet)
        db.commit()
        # Corrupt the payload copy only; the column keeps the real id.
        db._conn.execute(
            "UPDATE tweets SET payload = REPLACE(payload, "
            "'\"user_id\": 1,', '\"user_id\": 999,')"
        )
        restored = next(iter(db.scan()))
        assert restored.user.user_id == tweet.user.user_id == 1


def test_table_sink():
    sink = TableSink("results")
    sink.append({"a": 1})
    sink.append({"a": 2})
    assert len(sink) == 2
    assert [row["a"] for row in sink] == [1, 2]
    # Rows are copied: mutating the original must not alter the table.
    row = {"x": 1}
    sink.append(row)
    row["x"] = 99
    assert sink.rows[-1]["x"] == 1
