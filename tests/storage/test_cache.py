"""LRU/TTL cache."""

import pytest

from repro.clock import VirtualClock
from repro.storage.cache import LRUCache


def test_put_get():
    cache = LRUCache(capacity=4)
    cache.put("a", 1)
    assert cache.get("a") == 1
    assert cache.stats.hits == 1


def test_miss_returns_default():
    cache = LRUCache(capacity=4)
    assert cache.get("missing", "fallback") == "fallback"
    assert cache.stats.misses == 1


def test_none_is_a_legal_value():
    cache = LRUCache(capacity=4)
    cache.put("negative", None)
    assert cache.contains("negative")
    assert cache.get("negative", "default") is None


def test_lru_eviction_order():
    cache = LRUCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.get("a")  # refresh a
    cache.put("c", 3)  # evicts b
    assert cache.contains("a")
    assert not cache.contains("b")
    assert cache.contains("c")
    assert cache.stats.evictions == 1


def test_put_refreshes_recency():
    cache = LRUCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    cache.put("a", 10)  # refresh via put
    cache.put("c", 3)  # evicts b, not a
    assert cache.get("a") == 10
    assert not cache.contains("b")


def test_capacity_bound():
    cache = LRUCache(capacity=3)
    for i in range(10):
        cache.put(i, i)
    assert len(cache) == 3


def test_ttl_expiry():
    clock = VirtualClock(start=0.0)
    cache = LRUCache(capacity=4, ttl_seconds=10.0, clock=clock)
    cache.put("a", 1)
    clock.advance(5.0)
    assert cache.get("a") == 1
    clock.advance(6.0)
    assert cache.get("a") is None
    assert cache.stats.expirations == 1


def test_ttl_requires_clock():
    with pytest.raises(ValueError):
        LRUCache(capacity=4, ttl_seconds=1.0)


def test_contains_does_not_touch_stats_or_recency():
    cache = LRUCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.contains("a")
    assert cache.stats.hits == 0
    # 'contains' must not refresh: inserting evicts the true LRU ('a').
    cache.put("c", 3)
    assert not cache.contains("a")


def test_clear_keeps_counters():
    cache = LRUCache(capacity=2)
    cache.put("a", 1)
    cache.get("a")
    cache.clear()
    assert len(cache) == 0
    assert cache.stats.hits == 1


def test_hit_rate():
    cache = LRUCache(capacity=2)
    cache.put("a", 1)
    cache.get("a")
    cache.get("b")
    assert cache.stats.hit_rate == 0.5


def test_invalid_capacity():
    with pytest.raises(ValueError):
        LRUCache(capacity=0)
