"""Gazetteer lookups and weights."""

from repro.geo.gazetteer import CITIES, default_gazetteer


def test_has_a_useful_size():
    assert len(default_gazetteer()) >= 120


def test_lookup_canonical_name():
    city = default_gazetteer().lookup("Tokyo")
    assert city is not None
    assert city.country == "Japan"


def test_lookup_case_insensitive():
    gazetteer = default_gazetteer()
    assert gazetteer.lookup("tokyo") is gazetteer.lookup("TOKYO")


def test_lookup_alias():
    city = default_gazetteer().lookup("NYC")
    assert city is not None
    assert city.name == "New York"


def test_lookup_unknown_returns_none():
    assert default_gazetteer().lookup("Atlantis") is None


def test_lookup_strips_whitespace():
    assert default_gazetteer().lookup("  boston ") is not None


def test_nearest_returns_closest_city():
    gazetteer = default_gazetteer()
    tokyo = gazetteer.lookup("Tokyo")
    found = gazetteer.nearest(35.7, 139.7)
    assert found is tokyo


def test_nearest_far_ocean_point_still_returns_something():
    city = default_gazetteer().nearest(0.0, -140.0)
    assert city is not None


def test_twitter_weights_reflect_adoption_skew():
    """The paper's example: Tokyo must far outweigh Cape Town."""
    gazetteer = default_gazetteer()
    weights = dict(zip([c.name for c in gazetteer.cities], gazetteer.twitter_weights()))
    assert weights["Tokyo"] > 20 * weights["Cape Town"]


def test_no_duplicate_canonical_names():
    names = [c.name.casefold() for c in CITIES]
    assert len(names) == len(set(names))


def test_coordinates_are_valid():
    for city in CITIES:
        assert -90 <= city.lat <= 90
        assert -180 <= city.lon <= 180
        assert city.population > 0
        assert city.twitter_weight > 0


def test_default_gazetteer_is_shared():
    assert default_gazetteer() is default_gazetteer()
