"""Free-text geocoding."""

import pytest

from repro.errors import GeocodeError
from repro.geo.geocode import Geocoder, normalize_location


@pytest.fixture(scope="module")
def geocoder():
    return Geocoder()


def test_exact_name(geocoder):
    lat, lon = geocoder.geocode("Boston")
    assert abs(lat - 42.36) < 0.1
    assert abs(lon + 71.06) < 0.1


def test_alias(geocoder):
    assert geocoder.resolve("NYC").name == "New York"


def test_case_and_punctuation_noise(geocoder):
    assert geocoder.resolve("tokyo!!").name == "Tokyo"
    assert geocoder.resolve("BOSTON???").name == "Boston"


def test_city_comma_region(geocoder):
    assert geocoder.resolve("Boston, MA").name == "Boston"
    assert geocoder.resolve("Rio / Brazil").name == "Rio de Janeiro"


def test_noise_words_dropped(geocoder):
    assert geocoder.resolve("downtown Tokyo").name == "Tokyo"
    assert geocoder.resolve("living in Chicago").name == "Chicago"


def test_substring_scan_for_multiword(geocoder):
    assert geocoder.resolve("the great city of new york forever").name == "New York"


def test_unresolvable_raises(geocoder):
    with pytest.raises(GeocodeError):
        geocoder.geocode("somewhere over the rainbow")


def test_empty_raises(geocoder):
    with pytest.raises(GeocodeError):
        geocoder.geocode("")
    with pytest.raises(GeocodeError):
        geocoder.geocode("   ")


def test_try_geocode_returns_none_instead(geocoder):
    assert geocoder.try_geocode("the moon") is None
    assert geocoder.try_geocode("Paris") is not None


def test_accented_alias(geocoder):
    assert geocoder.resolve("São Paulo").name == "São Paulo"
    assert geocoder.resolve("Sao Paulo").name == "São Paulo"


def test_normalize_location():
    assert normalize_location("  NYC!!  ") == "nyc"
    assert normalize_location("a   b") == "a b"


def test_generated_profile_locations_resolve(geocoder):
    """Every messy style the user generator emits must resolve."""
    from repro.geo.gazetteer import default_gazetteer
    from repro.twitter.users import _messy_location
    import random

    rng = random.Random(3)
    city = default_gazetteer().lookup("Manchester")
    for _ in range(50):
        messy = _messy_location(rng, city)
        assert geocoder.resolve(messy).name == "Manchester", messy
