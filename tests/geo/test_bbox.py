"""Bounding boxes."""

import pytest

from repro.geo.bbox import NAMED_BOXES, BoundingBox, named_box


def test_contains_inside():
    box = BoundingBox(0.0, 0.0, 10.0, 10.0)
    assert box.contains(5.0, 5.0)


def test_contains_boundary_inclusive():
    box = BoundingBox(0.0, 0.0, 10.0, 10.0)
    assert box.contains(0.0, 0.0)
    assert box.contains(10.0, 10.0)


def test_contains_outside():
    box = BoundingBox(0.0, 0.0, 10.0, 10.0)
    assert not box.contains(-0.1, 5.0)
    assert not box.contains(5.0, 10.1)


def test_contains_point_none_is_outside():
    box = BoundingBox(0.0, 0.0, 10.0, 10.0)
    assert not box.contains_point(None)
    assert box.contains_point((5.0, 5.0))


def test_invalid_latitude_order_rejected():
    with pytest.raises(ValueError):
        BoundingBox(10.0, 0.0, 0.0, 10.0)


def test_invalid_longitude_order_rejected():
    with pytest.raises(ValueError):
        BoundingBox(0.0, 10.0, 10.0, 0.0)


def test_out_of_range_rejected():
    with pytest.raises(ValueError):
        BoundingBox(-91.0, 0.0, 0.0, 10.0)
    with pytest.raises(ValueError):
        BoundingBox(0.0, 0.0, 10.0, 181.0)


def test_center():
    box = BoundingBox(0.0, 0.0, 10.0, 20.0)
    assert box.center == (5.0, 10.0)


def test_area():
    box = BoundingBox(0.0, 0.0, 2.0, 3.0)
    assert box.area_deg2 == 6.0


def test_expanded_clamps_to_bounds():
    box = BoundingBox(-89.0, -179.0, 89.0, 179.0).expanded(5.0)
    assert box.south == -90.0
    assert box.east == 180.0


def test_around_contains_center():
    box = BoundingBox.around(40.0, -74.0, radius_km=50.0)
    assert box.contains(40.0, -74.0)
    assert not box.contains(42.0, -74.0)  # ~220 km north


def test_nyc_named_box_contains_manhattan():
    nyc = named_box("NYC")
    assert nyc.contains(40.7589, -73.9851)  # Times Square
    assert not nyc.contains(42.36, -71.06)  # Boston


def test_named_box_unknown_raises_with_choices():
    with pytest.raises(KeyError) as excinfo:
        named_box("gotham")
    assert "nyc" in str(excinfo.value)


def test_all_named_boxes_valid():
    for name, box in NAMED_BOXES.items():
        assert box.name == name
        assert box.area_deg2 > 0
