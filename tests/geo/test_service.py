"""Simulated web-service latency, batching, async, and failures."""

import pytest

from repro.clock import VirtualClock
from repro.errors import ServiceError
from repro.geo.service import LatencyModel, SimulatedWebService


def make_service(clock=None, **kwargs):
    clock = clock or VirtualClock(start=0.0)
    service = SimulatedWebService(
        "echo", lambda item: item * 2, clock=clock, **kwargs
    )
    return service, clock


def test_request_advances_clock_by_latency():
    service, clock = make_service(latency=LatencyModel(0.3, sigma=0.0))
    assert service.request(5) == 10
    assert clock.now == pytest.approx(0.3)


def test_latency_sampling_varies_with_sigma():
    service, clock = make_service(latency=LatencyModel(0.3, sigma=0.5))
    before = clock.now
    service.request(1)
    first = clock.now - before
    before = clock.now
    service.request(1)
    second = clock.now - before
    assert first != second  # lognormal draws differ


def test_stats_accumulate():
    service, _clock = make_service(latency=LatencyModel(0.2, sigma=0.0))
    service.request(1)
    service.request(2)
    assert service.stats.requests == 2
    assert service.stats.items == 2
    assert service.stats.virtual_seconds_busy == pytest.approx(0.4)


def test_batch_amortizes_round_trip():
    service, clock = make_service(
        latency=LatencyModel(0.3, sigma=0.0, per_item_seconds=0.002)
    )
    results = service.request_batch([1, 2, 3, 4])
    assert results == [2, 4, 6, 8]
    # One round trip + 3 marginal items, far less than 4 round trips.
    assert clock.now == pytest.approx(0.3 + 3 * 0.002)


def test_batch_respects_size_limit():
    service, _clock = make_service(max_batch_size=3)
    with pytest.raises(ServiceError):
        service.request_batch([1, 2, 3, 4])


def test_batch_isolates_per_item_errors():
    clock = VirtualClock(start=0.0)

    def resolver(item):
        if item == 13:
            raise ServiceError("bad item")
        return item

    service = SimulatedWebService(
        "picky", resolver, clock=clock, latency=LatencyModel(0.1, sigma=0.0)
    )
    results = service.request_batch([1, 13, 3])
    assert results[0] == 1
    assert isinstance(results[1], ServiceError)
    assert results[2] == 3


def test_async_does_not_block():
    service, clock = make_service(latency=LatencyModel(0.3, sigma=0.0))
    landed = []
    done_at = service.request_async(7, lambda value, err: landed.append((value, err)))
    assert clock.now == 0.0  # caller not blocked
    assert landed == []
    clock.advance_to(done_at)
    assert landed == [(14, None)]


def test_async_overlaps_requests():
    service, clock = make_service(latency=LatencyModel(0.3, sigma=0.0))
    landed = []
    for item in range(5):
        service.request_async(item, lambda v, e: landed.append(v))
    clock.flush()
    # Five overlapping requests finish at t=0.3, not t=1.5.
    assert clock.now == pytest.approx(0.3)
    assert sorted(landed) == [0, 2, 4, 6, 8]
    assert service.stats.in_flight_high_water == 5


def test_async_error_reaches_callback():
    clock = VirtualClock(start=0.0)

    def resolver(_item):
        raise ServiceError("boom")

    service = SimulatedWebService(
        "broken", resolver, clock=clock, latency=LatencyModel(0.1, sigma=0.0)
    )
    landed = []
    service.request_async(1, lambda v, e: landed.append((v, type(e).__name__)))
    clock.flush()
    assert landed == [(None, "ServiceError")]


def test_failure_injection():
    service, _clock = make_service(failure_rate=0.5, latency=LatencyModel(0.01, sigma=0.0))
    failures = 0
    for i in range(200):
        try:
            service.request(i)
        except ServiceError:
            failures += 1
    assert 50 < failures < 150
    assert service.stats.failures == failures


def test_failure_rate_validated():
    with pytest.raises(ValueError):
        make_service(failure_rate=1.0)
