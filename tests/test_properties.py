"""Property-based tests (hypothesis) on core data structures and invariants."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clock import VirtualClock
from repro.engine.aggregates import AvgAggregate
from repro.engine.windows import windows_containing
from repro.geo.bbox import BoundingBox
from repro.nlp.similarity import cosine_similarity
from repro.nlp.tokenize import tokenize
from repro.sql.ast import WindowSpec
from repro.storage.cache import LRUCache
from repro.storage.topk import SpaceSaving
from repro.twitinfo.timeline import Timeline


# --- LRU cache ----------------------------------------------------------------


@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["put", "get"]), st.integers(0, 20)),
        max_size=300,
    ),
    capacity=st.integers(1, 8),
)
def test_cache_never_exceeds_capacity_and_agrees_with_model(ops, capacity):
    cache = LRUCache(capacity=capacity)
    model: dict[int, int] = {}
    order: list[int] = []  # LRU order, least-recent first
    for op, key in ops:
        if op == "put":
            cache.put(key, key * 2)
            if key in model:
                order.remove(key)
            elif len(model) >= capacity:
                victim = order.pop(0)
                del model[victim]
            model[key] = key * 2
            order.append(key)
        else:
            got = cache.get(key)
            expected = model.get(key)
            assert got == expected
            if key in model:
                order.remove(key)
                order.append(key)
        assert len(cache) <= capacity
        assert len(cache) == len(model)


# --- Space-Saving ----------------------------------------------------------------


@given(
    items=st.lists(st.integers(0, 40), min_size=1, max_size=500),
    capacity=st.integers(1, 16),
)
def test_space_saving_overestimates_and_bounds_error(items, capacity):
    sketch = SpaceSaving(capacity=capacity)
    truth: Counter[int] = Counter()
    for item in items:
        sketch.add(item)
        truth[item] += 1
    bound = sketch.observed / capacity
    for entry in sketch.top(capacity):
        assert entry.count >= truth[entry.item]
        assert entry.error <= bound + 1e-9
        assert entry.guaranteed <= truth[entry.item]


# --- Window assignment --------------------------------------------------------------


@given(
    timestamp=st.floats(0, 1e9, allow_nan=False, allow_infinity=False),
    size_slides=st.tuples(st.integers(1, 3600), st.integers(1, 3600)),
)
def test_every_timestamp_covered_by_expected_window_count(timestamp, size_slides):
    slide_raw, size_extra = size_slides
    slide = float(slide_raw)
    size = slide + float(size_extra)  # size >= slide (engine's usage)
    spec = WindowSpec(size_seconds=size, slide_seconds=slide)
    windows = list(windows_containing(timestamp, spec))
    assert windows, "every timestamp belongs to at least one window"
    for start, end in windows:
        assert start <= timestamp < end
        assert end - start == size
    # Window starts are distinct and aligned to the slide.
    starts = [start for start, _end in windows]
    assert len(set(starts)) == len(starts)


# --- Timeline ---------------------------------------------------------------------


@given(
    times=st.lists(
        st.floats(0, 1e5, allow_nan=False, allow_infinity=False), max_size=200
    ),
    bin_seconds=st.floats(1.0, 3600),
)
@settings(deadline=None)
def test_timeline_conserves_counts(times, bin_seconds):
    timeline = Timeline(bin_seconds=bin_seconds)
    for t in times:
        timeline.add(t)
    assert timeline.total == len(times)
    assert sum(count for _s, count in timeline.bins(fill_gaps=False)) == len(times)
    gap_filled = timeline.bins()
    assert sum(count for _s, count in gap_filled) == len(times)


# --- BoundingBox ----------------------------------------------------------------------


@given(
    south=st.floats(-89, 88),
    west=st.floats(-179, 178),
    dlat=st.floats(0.1, 2),
    dlon=st.floats(0.1, 2),
    lat=st.floats(-90, 90),
    lon=st.floats(-180, 180),
)
def test_bbox_expansion_is_monotone(south, west, dlat, dlon, lat, lon):
    box = BoundingBox(south, west, min(90.0, south + dlat), min(180.0, west + dlon))
    grown = box.expanded(1.0)
    if box.contains(lat, lon):
        assert grown.contains(lat, lon)


# --- Tokenizer ------------------------------------------------------------------------


@given(st.text(max_size=280))
def test_tokenizer_never_crashes_and_is_lowercase(text):
    tokens = tokenize(text)
    for token in tokens:
        if token not in {":)", ":-)", ":D", ";)", "=)", "<3", ":(", ":-(",
                         ":'(", "D:", "=("}:
            assert token == token.lower()


@given(st.text(alphabet=st.characters(whitelist_categories=("Ll", "Zs")), max_size=140))
def test_tokenizer_idempotent_on_plain_text(text):
    tokens = tokenize(text)
    assert tokenize(" ".join(tokens)) == tokens


# --- Cosine ---------------------------------------------------------------------------


weights = st.dictionaries(
    st.text(st.characters(min_codepoint=97, max_codepoint=122), min_size=1, max_size=4),
    st.floats(0.01, 100, allow_nan=False),
    max_size=8,
)


@given(weights, weights)
def test_cosine_bounded_and_symmetric(left, right):
    value = cosine_similarity(left, right)
    assert 0.0 <= value <= 1.0 + 1e-9
    assert value == pytest.approx(cosine_similarity(right, left))


@given(weights)
def test_cosine_self_similarity_is_one(vector):
    if vector:
        assert cosine_similarity(vector, dict(vector)) == pytest.approx(1.0)


# --- Welford AVG ------------------------------------------------------------------------


@given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=100))
def test_avg_aggregate_matches_numpy_free_mean(values):
    agg = AvgAggregate()
    for value in values:
        agg.add(value)
    assert agg.result() == pytest.approx(sum(values) / len(values), rel=1e-6, abs=1e-6)
    assert agg.variance >= -1e-9


# --- Virtual clock -----------------------------------------------------------------------


@given(st.lists(st.floats(0, 100, allow_nan=False), max_size=50))
def test_clock_callbacks_fire_in_order(deadlines):
    clock = VirtualClock(start=0.0)
    fired: list[float] = []
    for deadline in deadlines:
        clock.call_at(deadline, lambda d=deadline: fired.append(d))
    clock.flush()
    assert fired == sorted(fired)
    assert len(fired) == len(deadlines)
