"""Seeded randomness helpers."""

import math
import random

import pytest

from repro import rng as rng_mod


def test_derive_is_deterministic():
    a = rng_mod.derive(42, "label").random()
    b = rng_mod.derive(42, "label").random()
    assert a == b


def test_derive_differs_by_label():
    a = rng_mod.derive(42, "one").random()
    b = rng_mod.derive(42, "two").random()
    assert a != b


def test_derive_differs_by_seed():
    a = rng_mod.derive(1, "label").random()
    b = rng_mod.derive(2, "label").random()
    assert a != b


def test_zipf_ranks_sum_to_one():
    probs = rng_mod.zipf_ranks(100, exponent=1.1)
    assert math.isclose(sum(probs), 1.0, rel_tol=1e-9)


def test_zipf_ranks_monotone_decreasing():
    probs = rng_mod.zipf_ranks(50)
    assert all(a >= b for a, b in zip(probs, probs[1:]))


def test_zipf_ranks_rejects_nonpositive():
    with pytest.raises(ValueError):
        rng_mod.zipf_ranks(0)


def test_zipf_sample_in_range():
    rng = random.Random(7)
    for _ in range(200):
        assert 0 <= rng_mod.zipf_sample(rng, 10) < 10


def test_zipf_chooser_skews_low_ranks():
    rng = random.Random(7)
    choose = rng_mod.zipf_chooser(rng, 100, exponent=1.2)
    draws = [choose() for _ in range(5000)]
    assert draws.count(0) > draws.count(50)


def test_lognormal_mean_is_calibrated():
    rng = random.Random(3)
    samples = [rng_mod.lognormal(rng, 0.3, sigma=0.5) for _ in range(20000)]
    assert 0.27 < sum(samples) / len(samples) < 0.33


def test_lognormal_rejects_nonpositive_mean():
    rng = random.Random(3)
    with pytest.raises(ValueError):
        rng_mod.lognormal(rng, 0.0)


def test_weighted_choice_respects_weights():
    rng = random.Random(5)
    draws = [
        rng_mod.weighted_choice(rng, ["a", "b"], [10.0, 1.0]) for _ in range(1000)
    ]
    assert draws.count("a") > draws.count("b")


def test_weighted_choice_validates():
    rng = random.Random(5)
    with pytest.raises(ValueError):
        rng_mod.weighted_choice(rng, ["a"], [1.0, 2.0])
    with pytest.raises(ValueError):
        rng_mod.weighted_choice(rng, [], [])
