"""Extension features: partial results, CSV export, classifier persistence."""

import csv

import pytest

from repro import EngineConfig
from repro.geo.service import LatencyModel
from repro.nlp.sentiment import SentimentClassifier, train_default_classifier


# --- partial results -----------------------------------------------------------


def test_partial_results_never_stall(session_factory):
    config = EngineConfig(
        latency_mode="async",
        partial_results=True,
        pool_depth=2,  # shallow pool forces in-flight collisions
        # Batches small enough that requests launched for one batch land
        # (stream time advances) before later batches need the same keys.
        batch_size=32,
        geocode_latency=LatencyModel(0.3, sigma=0.0),
    )
    session = session_factory("soccer", config=config)
    rows = session.query(
        "SELECT latitude(loc) AS lat FROM twitter "
        "WHERE text contains 'soccer' LIMIT 200;"
    ).all()
    stats = session.geocode_managed.stats
    assert len(rows) == 200
    assert stats.partials > 0  # some values reported as not-yet-known
    # Partial rows carry NULL; known rows carry real coordinates.
    known = [r["lat"] for r in rows if r["lat"] is not None]
    assert known


def test_partial_results_trade_nulls_for_stalls(session_factory):
    sql = (
        "SELECT latitude(loc) AS lat FROM twitter "
        "WHERE text contains 'soccer' LIMIT 200;"
    )
    outcomes = {}
    for partial in (False, True):
        config = EngineConfig(
            latency_mode="async",
            partial_results=partial,
            pool_depth=2,
            geocode_latency=LatencyModel(0.3, sigma=0.0),
        )
        session = session_factory("soccer", config=config)
        rows = session.query(sql).all()
        stats = session.geocode_managed.stats
        outcomes[partial] = {
            "nulls": sum(1 for r in rows if r["lat"] is None),
            "stall": stats.stall_seconds,
        }
    # Blocking variant stalls more; partial variant answers with more NULLs.
    assert outcomes[True]["stall"] < outcomes[False]["stall"]
    assert outcomes[True]["nulls"] >= outcomes[False]["nulls"]


def test_partial_results_requires_async():
    from repro.engine.latency import ManagedCall
    from repro.clock import VirtualClock
    from repro.geo.service import SimulatedWebService

    service = SimulatedWebService(
        "x", lambda k: k, clock=VirtualClock(), latency=LatencyModel(0.1, sigma=0.0)
    )
    with pytest.raises(ValueError):
        ManagedCall(service, mode="cached", partial_results=True)


# --- CSV export -------------------------------------------------------------------


def test_to_csv_writes_schema_and_rows(soccer_session, tmp_path):
    path = str(tmp_path / "out.csv")
    handle = soccer_session.query(
        "SELECT sentiment(text) AS mood, text FROM twitter "
        "WHERE text contains 'tevez' LIMIT 7;"
    )
    written = handle.to_csv(path)
    assert written == 7
    with open(path, encoding="utf-8") as f:
        rows = list(csv.DictReader(f))
    assert len(rows) == 7
    assert set(rows[0]) == {"mood", "text", "created_at"}
    assert all("tevez" in row["text"].lower() for row in rows)


def test_to_csv_limit(soccer_session, tmp_path):
    path = str(tmp_path / "out.csv")
    handle = soccer_session.query(
        "SELECT text FROM twitter WHERE text contains 'soccer';"
    )
    assert handle.to_csv(path, limit=5) == 5
    handle.close()


def test_to_csv_drops_internal_fields(soccer_session, tmp_path):
    path = str(tmp_path / "out.csv")
    soccer_session.query(
        "SELECT * FROM twitter WHERE text contains 'tevez' LIMIT 2;"
    ).to_csv(path)
    with open(path, encoding="utf-8") as f:
        header = f.readline()
    assert "__tweet__" not in header


# --- classifier persistence -----------------------------------------------------------


def test_classifier_save_load_round_trip(tmp_path):
    original = train_default_classifier(corpus_size=800, seed=5)
    path = str(tmp_path / "model.json")
    original.save(path)
    restored = SentimentClassifier.load(path)
    probes = (
        "what a disaster, gutted",
        "absolutely brilliant, so happy",
        "watching the news",
        "GOAL tevez makes it 3-0",
    )
    for text in probes:
        assert restored.classify(text) == original.classify(text)
        assert restored.log_odds(text) == pytest.approx(original.log_odds(text))


def test_classifier_from_dict_rejects_unknown_format():
    with pytest.raises(ValueError):
        SentimentClassifier.from_dict({"format": "other"})


def test_classifier_to_dict_requires_training():
    with pytest.raises(RuntimeError):
        SentimentClassifier().to_dict()
