"""Streaming operators, exercised directly on synthetic rows."""

import pytest

from repro.clock import VirtualClock
from repro.engine import operators as ops
from repro.engine.aggregates import make_aggregate
from repro.engine.types import EvalContext, batch_rows, iter_rows
from repro.sql.ast import WindowSpec


def drain(operator):
    """Flatten an operator's RowBatch output back to rows."""
    return list(iter_rows(operator))


@pytest.fixture()
def ctx():
    return EvalContext(clock=VirtualClock(start=0.0))


def rows_at(*specs):
    """Build rows from (created_at, extra-dict) pairs."""
    return [{"created_at": t, **extra} for t, extra in specs]


def test_scan_advances_stream_time_and_counts(ctx):
    rows = rows_at((1.0, {}), (5.0, {}), (9.0, {}))
    out = drain(ops.ScanOperator(rows, ctx))
    assert len(out) == 3
    assert ctx.stream_time == 9.0
    assert ctx.stats.rows_scanned == 3


def test_scan_batches_by_size(ctx):
    rows = rows_at(*((float(i), {}) for i in range(5)))
    batches = list(ops.ScanOperator(rows, ctx, batch_size=2))
    assert [len(b) for b in batches] == [2, 2, 1]
    assert [b.seq for b in batches] == [0, 1, 2]
    assert [b.last for b in batches] == [False, False, True]
    assert ctx.stats.batches == 3


def test_scan_emits_empty_last_batch_on_aligned_exhaustion(ctx):
    rows = rows_at((1.0, {}), (2.0, {}))
    batches = list(ops.ScanOperator(rows, ctx, batch_size=2))
    assert [len(b) for b in batches] == [2, 0]
    assert batches[-1].last


def test_scan_validates_batch_size(ctx):
    with pytest.raises(ValueError):
        ops.ScanOperator([], ctx, batch_size=0)


def test_filter_true_only(ctx):
    rows = rows_at((1.0, {"x": 1}), (2.0, {"x": None}), (3.0, {"x": 0}))
    predicate = lambda row, _ctx: (None if row["x"] is None else row["x"] > 0)
    out = drain(ops.FilterOperator(batch_rows(rows, 2), predicate, ctx))
    assert [r["x"] for r in out] == [1]  # NULL verdict drops the row


def test_project_evaluates_items_and_keeps_time(ctx):
    rows = rows_at((1.0, {"x": 2}))
    out = drain(
        ops.ProjectOperator(
            batch_rows(rows, 2), [("double", lambda r, _c: r["x"] * 2)], ctx
        )
    )
    assert out == [{"double": 4, "created_at": 1.0}]


def test_limit(ctx):
    rows = rows_at(*((float(i), {}) for i in range(10)))
    assert len(drain(ops.LimitOperator(batch_rows(rows, 4), 3))) == 3


def test_limit_marks_truncated_batch_last(ctx):
    rows = rows_at(*((float(i), {}) for i in range(10)))
    batches = list(ops.LimitOperator(batch_rows(rows, 4), 6))
    assert [len(b) for b in batches] == [4, 2]
    assert batches[-1].last


def test_into_tees_rows(ctx):
    class Sink:
        def __init__(self):
            self.rows = []

        def append(self, row):
            self.rows.append(row)

    sink = Sink()
    rows = rows_at((1.0, {"x": 1}), (2.0, {"x": 2}))
    out = drain(ops.IntoOperator(batch_rows(rows, 1), sink))
    assert len(out) == 2
    assert len(sink.rows) == 2


def test_rebatch_rechunks_and_marks_last(ctx):
    rows = rows_at(*((float(i), {}) for i in range(5)))
    batches = list(ops.rebatch(iter(rows), 2))
    assert [len(b) for b in batches] == [2, 2, 1]
    assert [b.last for b in batches] == [False, False, True]
    assert [r["created_at"] for b in batches for r in b.rows] == [
        0.0, 1.0, 2.0, 3.0, 4.0,
    ]


def make_agg_operator(rows, ctx, size=10.0, slide=None, group=None,
                      having=None, order_by=None, limit=None):
    spec = WindowSpec(size_seconds=size, slide_seconds=slide)
    group_evals = group or []
    agg_factories = [
        (lambda: make_aggregate("count", False, True), None, False),
        (
            lambda: make_aggregate("sum", False, False),
            lambda r, _c: r.get("x"),
            True,
        ),
    ]
    output = [
        ("n", lambda r, _c: r["__agg0"]),
        ("total", lambda r, _c: r["__agg1"]),
    ]
    if group_evals:
        output.append(("key", lambda r, _c: r.get("k")))
    return iter_rows(
        ops.WindowedAggregateOperator(
            batch_rows(rows, 2), spec, group_evals, agg_factories, output,
            ctx, having=having, order_by=order_by, limit=limit,
        )
    )


def test_tumbling_aggregate_closes_on_time(ctx):
    rows = rows_at(
        (1.0, {"x": 1}), (2.0, {"x": 2}),      # window [0, 10)
        (11.0, {"x": 10}),                        # window [10, 20)
        (25.0, {"x": 100}),                       # window [20, 30)
    )
    out = list(make_agg_operator(rows, ctx))
    assert len(out) == 3
    assert out[0] == {
        "n": 2, "total": 3.0, "window_start": 0.0, "window_end": 10.0,
        "created_at": 10.0,
    }
    assert out[1]["total"] == 10.0
    assert out[2]["total"] == 100.0  # end-of-stream flush


def test_aggregate_skips_nulls_for_sum_not_count_star(ctx):
    rows = rows_at((1.0, {"x": None}), (2.0, {"x": 5}))
    out = list(make_agg_operator(rows, ctx))
    assert out[0]["n"] == 2
    assert out[0]["total"] == 5.0


def test_group_by_keys(ctx):
    rows = rows_at(
        (1.0, {"x": 1, "k": "a"}),
        (2.0, {"x": 2, "k": "b"}),
        (3.0, {"x": 3, "k": "a"}),
    )
    out = list(
        make_agg_operator(rows, ctx, group=[lambda r, _c: r["k"]])
    )
    by_key = {row["key"]: row for row in out}
    assert by_key["a"]["total"] == 4.0
    assert by_key["b"]["total"] == 2.0


def test_sliding_windows_count_rows_multiple_times(ctx):
    rows = rows_at((5.0, {"x": 1}), (25.0, {"x": 1}))
    out = list(make_agg_operator(rows, ctx, size=20.0, slide=10.0))
    # Row at t=5 belongs to windows [-10, 10) and [0, 20).
    totals = sorted((r["window_start"], r["n"]) for r in out)
    assert (0.0, 1) in totals
    assert (-10.0, 1) in totals
    assert sum(n for _s, n in totals) == 4  # each row in 2 windows


def test_having_filters_groups(ctx):
    rows = rows_at(
        (1.0, {"x": 1, "k": "a"}),
        (2.0, {"x": 2, "k": "a"}),
        (3.0, {"x": 3, "k": "b"}),
    )
    out = list(
        make_agg_operator(
            rows, ctx,
            group=[lambda r, _c: r["k"]],
            having=lambda r, _c: r["__agg0"] >= 2,
        )
    )
    assert len(out) == 1
    assert out[0]["key"] == "a"


def test_order_by_and_limit_within_window(ctx):
    rows = rows_at(
        (1.0, {"x": 5, "k": "a"}),
        (2.0, {"x": 1, "k": "b"}),
        (3.0, {"x": 3, "k": "c"}),
    )
    out = list(
        make_agg_operator(
            rows, ctx,
            group=[lambda r, _c: r["k"]],
            order_by=[(lambda r, _c: r["total"], True)],
            limit=2,
        )
    )
    assert [r["total"] for r in out] == [5.0, 3.0]


def test_windows_closed_stat(ctx):
    rows = rows_at((1.0, {"x": 1}), (11.0, {"x": 1}), (21.0, {"x": 1}))
    list(make_agg_operator(rows, ctx))
    assert ctx.stats.windows_closed == 3


def test_join_matches_within_band(ctx):
    left = rows_at((1.0, {"k": 1, "lv": "L1"}), (50.0, {"k": 1, "lv": "L2"}))
    right = rows_at((2.0, {"k": 1, "rv": "R1"}), (100.0, {"k": 2, "rv": "R2"}))
    join = ops.WindowedJoinOperator(
        batch_rows(left, 1), right,
        lambda r, _c: r["k"], lambda r, _c: r["k"],
        WindowSpec(size_seconds=10.0), ctx,
    )
    out = drain(join)
    assert len(out) == 1
    assert out[0]["lv"] == "L1"
    assert out[0]["rv"] == "R1"


def test_join_renames_colliding_fields(ctx):
    left = rows_at((1.0, {"k": 1, "v": "left"}))
    right = rows_at((1.5, {"k": 1, "v": "right"}))
    join = ops.WindowedJoinOperator(
        batch_rows(left, 2), right,
        lambda r, _c: r["k"], lambda r, _c: r["k"],
        WindowSpec(size_seconds=10.0), ctx,
    )
    out = drain(join)[0]
    assert out["v"] == "left"
    assert out["r_v"] == "right"


def test_join_null_keys_never_match(ctx):
    left = rows_at((1.0, {"k": None}))
    right = rows_at((1.5, {"k": None}))
    join = ops.WindowedJoinOperator(
        batch_rows(left, 2), right,
        lambda r, _c: r["k"], lambda r, _c: r["k"],
        WindowSpec(size_seconds=10.0), ctx,
    )
    assert drain(join) == []
