"""High-latency UDF machinery: caching, batching, async prefetch."""

import pytest

from repro.clock import VirtualClock
from repro.engine.latency import ManagedCall, PrefetchOperator
from repro.engine.types import EvalContext, RowBatch, batch_rows, iter_rows
from repro.errors import ServiceError
from repro.geo.service import LatencyModel, SimulatedWebService


def make_service(clock, mean=0.3, per_item=0.002):
    return SimulatedWebService(
        "echo",
        lambda key: f"value:{key}",
        clock=clock,
        latency=LatencyModel(mean, sigma=0.0, per_item_seconds=per_item),
    )


def test_blocking_pays_full_latency_every_call():
    clock = VirtualClock(start=0.0)
    managed = ManagedCall(make_service(clock), mode="blocking")
    for _ in range(5):
        assert managed("boston") == "value:boston"
    assert clock.now == pytest.approx(1.5)
    assert managed.cache is None


def test_cached_pays_once_per_key():
    clock = VirtualClock(start=0.0)
    managed = ManagedCall(make_service(clock), mode="cached")
    for _ in range(5):
        managed("boston")
    managed("tokyo")
    assert clock.now == pytest.approx(0.6)  # two round trips only
    assert managed.stats.cache_hits == 4


def test_cached_negative_caching():
    clock = VirtualClock(start=0.0)
    service = SimulatedWebService(
        "geocoder", lambda key: None, clock=clock,
        latency=LatencyModel(0.3, sigma=0.0),
    )
    managed = ManagedCall(service, mode="cached")
    assert managed("nowhere") is None
    assert managed("nowhere") is None
    assert service.stats.requests == 1  # the failure was cached


def test_negative_cache_disabled():
    clock = VirtualClock(start=0.0)
    service = SimulatedWebService(
        "geocoder", lambda key: None, clock=clock,
        latency=LatencyModel(0.3, sigma=0.0),
    )
    managed = ManagedCall(service, mode="cached", negative_cache=False)
    managed("nowhere")
    managed("nowhere")
    assert service.stats.requests == 2


def test_service_error_returns_none():
    clock = VirtualClock(start=0.0)

    def resolver(_key):
        raise ServiceError("down")

    service = SimulatedWebService(
        "down", resolver, clock=clock, latency=LatencyModel(0.1, sigma=0.0)
    )
    managed = ManagedCall(service, mode="cached")
    assert managed("x") is None


def test_batched_prefetch_amortizes():
    clock = VirtualClock(start=0.0)
    service = make_service(clock)
    managed = ManagedCall(service, mode="batched")
    keys = [f"city{i}" for i in range(10)]
    managed.prefetch(keys)
    after_prefetch = clock.now
    assert after_prefetch == pytest.approx(0.3 + 9 * 0.002)
    for key in keys:
        assert managed(key) == f"value:{key}"
    assert clock.now == after_prefetch  # all hits
    assert service.stats.batch_requests == 1


def test_batched_prefetch_chunks_by_service_limit():
    clock = VirtualClock(start=0.0)
    service = SimulatedWebService(
        "echo", lambda k: k, clock=clock,
        latency=LatencyModel(0.3, sigma=0.0), max_batch_size=4,
    )
    managed = ManagedCall(service, mode="batched")
    managed.prefetch([f"k{i}" for i in range(10)])
    assert service.stats.batch_requests == 3


def test_prefetch_dedupes_and_skips_cached():
    clock = VirtualClock(start=0.0)
    service = make_service(clock)
    managed = ManagedCall(service, mode="batched")
    managed.prefetch(["a", "a", "b"])
    assert service.stats.items == 2
    managed.prefetch(["a", "b", "c"])
    assert service.stats.items == 3  # only 'c' was new


def test_async_overlaps_with_stream_time():
    clock = VirtualClock(start=0.0)
    service = make_service(clock, mean=0.3)
    managed = ManagedCall(service, mode="async", pool_depth=8)
    managed.prefetch(["a", "b", "c"])
    assert clock.now == 0.0  # nothing blocked
    # Stream processing advances the clock past the completion time.
    clock.advance(0.5)
    assert managed("a") == "value:a"
    assert managed.stats.stalls == 0  # already landed


def test_async_stalls_only_until_request_lands():
    clock = VirtualClock(start=0.0)
    managed = ManagedCall(make_service(clock, mean=0.3), mode="async")
    managed.prefetch(["a"])
    value = managed("a")  # still in flight: stall to t=0.3
    assert value == "value:a"
    assert clock.now == pytest.approx(0.3)
    assert managed.stats.stalls == 1
    assert managed.stats.stall_seconds == pytest.approx(0.3)


def test_async_pool_depth_bounds_in_flight():
    clock = VirtualClock(start=0.0)
    service = make_service(clock, mean=0.3)
    managed = ManagedCall(service, mode="async", pool_depth=2)
    managed.prefetch([f"k{i}" for i in range(6)])
    assert service.stats.in_flight_high_water <= 2


def test_async_drain_completes_everything():
    clock = VirtualClock(start=0.0)
    managed = ManagedCall(make_service(clock), mode="async", pool_depth=8)
    managed.prefetch(["a", "b"])
    managed.drain()
    assert managed("a") == "value:a"
    assert managed.stats.stalls == 0


def test_prefetch_noop_for_blocking_and_cached():
    clock = VirtualClock(start=0.0)
    service = make_service(clock)
    managed = ManagedCall(service, mode="cached")
    managed.prefetch(["a", "b"])
    assert service.stats.requests == 0


def test_mode_validated():
    clock = VirtualClock(start=0.0)
    with pytest.raises(ValueError):
        ManagedCall(make_service(clock), mode="telepathic")
    with pytest.raises(ValueError):
        ManagedCall(make_service(clock), mode="async", pool_depth=0)


def test_batched_prefetch_charges_prefetch_seconds_not_stalls():
    clock = VirtualClock(start=0.0)
    managed = ManagedCall(make_service(clock), mode="batched")
    managed.prefetch([f"city{i}" for i in range(10)])
    # The round trip advanced the clock, but no consumer was blocked.
    assert managed.stats.prefetch_seconds == pytest.approx(clock.now)
    assert managed.stats.stall_seconds == 0.0
    assert managed.stats.stalls == 0
    d = managed.stats.as_dict()
    assert d["prefetch_seconds"] == pytest.approx(clock.now)
    assert d["stall_seconds"] == 0.0


def test_async_pool_full_wait_still_counts_as_stall():
    clock = VirtualClock(start=0.0)
    managed = ManagedCall(make_service(clock, mean=0.3), mode="async",
                          pool_depth=2)
    managed.prefetch([f"k{i}" for i in range(5)])
    # Launching 5 requests through a depth-2 pool blocks on completions.
    assert managed.stats.stalls > 0
    assert managed.stats.stall_seconds > 0.0
    assert managed.stats.prefetch_seconds == 0.0


def prefetch_pipeline(rows, managed, batch_size):
    ctx = EvalContext(clock=managed.service.clock)
    return PrefetchOperator(
        batch_rows(rows, batch_size), [(managed, lambda row: row["loc"])], ctx
    )


def test_prefetch_operator_warms_downstream():
    clock = VirtualClock(start=0.0)
    service = make_service(clock)
    managed = ManagedCall(service, mode="batched")
    rows = [{"created_at": float(i), "loc": f"city{i % 3}"} for i in range(30)]
    out = []
    for row in iter_rows(prefetch_pipeline(rows, managed, 10)):
        out.append(managed(row["loc"]))
    assert len(out) == 30
    # Only 3 distinct keys existed; the batch path resolved them.
    assert service.stats.items == 3
    assert managed.stats.cache_hits == 30


def test_prefetch_operator_batch_of_one_degenerates_to_per_row():
    clock = VirtualClock(start=0.0)
    service = make_service(clock)
    managed = ManagedCall(service, mode="batched")
    rows = [{"created_at": float(i), "loc": f"city{i}"} for i in range(4)]
    out = list(iter_rows(prefetch_pipeline(rows, managed, 1)))
    assert len(out) == 4
    # One prefetch round trip per batch → per row at batch size 1.
    assert service.stats.batch_requests == 4


def test_prefetch_operator_partial_final_batch():
    clock = VirtualClock(start=0.0)
    service = make_service(clock)
    managed = ManagedCall(service, mode="batched")
    # 7 rows through batches of 3: the source runs dry mid-refill and the
    # final short batch still prefetches and flows downstream.
    rows = [{"created_at": float(i), "loc": f"city{i}"} for i in range(7)]
    batches = list(prefetch_pipeline(rows, managed, 3))
    assert [len(b) for b in batches] == [3, 3, 1]
    assert batches[-1].last
    assert service.stats.items == 7


def test_prefetch_operator_all_none_keys_skips_service():
    clock = VirtualClock(start=0.0)
    service = make_service(clock)
    managed = ManagedCall(service, mode="batched")
    rows = [{"created_at": float(i), "loc": None} for i in range(6)]
    out = list(iter_rows(prefetch_pipeline(rows, managed, 3)))
    assert len(out) == 6
    assert service.stats.batch_requests == 0
    assert service.stats.requests == 0


def test_prefetch_operator_dedupes_within_batch():
    clock = VirtualClock(start=0.0)
    service = make_service(clock)
    managed = ManagedCall(service, mode="batched")
    rows = [{"created_at": float(i), "loc": "boston"} for i in range(8)]
    list(iter_rows(prefetch_pipeline(rows, managed, 8)))
    # Eight copies of one key → a single-item batch request.
    assert service.stats.batch_requests == 1
    assert service.stats.items == 1


def test_prefetch_operator_skips_punctuation_rows():
    clock = VirtualClock(start=0.0)
    service = make_service(clock)
    managed = ManagedCall(service, mode="batched")
    ctx = EvalContext(clock=clock)
    batch = RowBatch(
        [
            {"created_at": 0.0, "loc": "boston"},
            {"created_at": 1.0, "loc": "tokyo", "__punct__": True},
        ],
        last=True,
    )
    operator = PrefetchOperator(
        iter([batch]), [(managed, lambda row: row["loc"])], ctx
    )
    assert len(list(iter_rows(operator))) == 2
    assert service.stats.items == 1  # the punctuated row's key was skipped
