"""Session corners: api-less sessions, sliding SQL windows, table CSV,
ngram classifier option."""

import csv

import pytest

from repro import TweeQL
from repro.errors import UnknownSourceError


def test_session_without_api_uses_registered_sources_only():
    session = TweeQL()
    with pytest.raises(UnknownSourceError):
        session.query("SELECT text FROM twitter;")
    session.register_source(
        "numbers",
        lambda: iter([{"created_at": float(i), "n": i} for i in range(5)]),
        ("created_at", "n"),
    )
    rows = session.query("SELECT n * 2 AS d FROM numbers;").all()
    assert [r["d"] for r in rows] == [0, 2, 4, 6, 8]


def test_sliding_window_sql_end_to_end(soccer_session):
    rows = soccer_session.query(
        "SELECT COUNT(*) AS n FROM twitter WHERE text contains 'soccer' "
        "WINDOW 10 minutes EVERY 5 minutes;"
    ).all()
    assert rows
    starts = [r["window_start"] for r in rows]
    # Overlapping windows: starts step by the slide, not the size.
    diffs = {round(b - a) for a, b in zip(starts, starts[1:])}
    assert 300 in diffs or 300.0 in diffs
    # Each tweet lands in two windows: total counted ≈ 2x distinct.
    distinct = soccer_session.query(
        "SELECT COUNT(*) AS n FROM twitter WHERE text contains 'soccer' "
        "WINDOW 1 days;"
    ).all()
    total_sliding = sum(r["n"] for r in rows)
    total_once = sum(r["n"] for r in distinct)
    assert total_once * 1.7 < total_sliding < total_once * 2.3


def test_table_to_csv(soccer_session, tmp_path):
    soccer_session.query(
        "SELECT COUNT(*) AS n FROM twitter WHERE text contains 'tevez' "
        "WINDOW 30 minutes INTO counts;"
    ).all()
    path = str(tmp_path / "counts.csv")
    written = soccer_session.table("counts").to_csv(path)
    assert written > 0
    with open(path, encoding="utf-8") as f:
        rows = list(csv.DictReader(f))
    assert len(rows) == written
    assert "n" in rows[0]


def test_ngram_classifier_option():
    from repro.nlp.corpus import training_corpus
    from repro.nlp.sentiment import SentimentClassifier

    train = training_corpus(size=500, seed=3)
    unigram = SentimentClassifier(ngram=1)
    bigram = SentimentClassifier(ngram=2)
    unigram.train(train)
    bigram.train(train)
    assert bigram.vocabulary_size > unigram.vocabulary_size
    with pytest.raises(ValueError):
        SentimentClassifier(ngram=3)


def test_ngram_survives_save_load(tmp_path):
    from repro.nlp.corpus import training_corpus
    from repro.nlp.sentiment import SentimentClassifier

    classifier = SentimentClassifier(ngram=2)
    classifier.train(training_corpus(size=300, seed=3))
    path = str(tmp_path / "model.json")
    classifier.save(path)
    restored = SentimentClassifier.load(path)
    probe = "what a disaster, absolutely gutted today"
    assert restored.log_odds(probe) == pytest.approx(classifier.log_odds(probe))
