"""ColumnBatch: the columnar payload and its row bridges.

The load-bearing property is the round trip — ``from_rows(to_rows(b))``
must reproduce a batch exactly (ragged schemas, NULL vs MISSING, empty
punctuation batches included), because every row-oriented consumer (INTO
sinks, the exchange partitioner, CSV export) reads through ``.rows`` and
every columnar producer writes through ``from_rows``. The vectorized
expression layer is then checked cell-for-cell against the scalar
compiler on deliberately nasty values (None, mixed types, zero
divisors).
"""

from __future__ import annotations

import pickle

import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clock import VirtualClock
from repro.engine.expressions import (
    Broadcast,
    compile_expr,
    compile_vector_expr,
    expand_column,
)
from repro.engine.functions import default_registry
from repro.engine.types import MISSING, ColumnBatch, EvalContext, RowBatch
from repro.sql import parse


def parse_expression(fragment):
    """Parse a standalone expression via a WHERE-clause wrapper."""
    return parse(f"SELECT text FROM t WHERE {fragment};").where

FIELDS = ("text", "followers", "lang", "loc")

cell_values = st.one_of(
    st.none(),
    st.integers(min_value=-5, max_value=2000),
    st.sampled_from(("goal", "", "Goal!", "obama rain", "12")),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.booleans(),
)


@st.composite
def row_lists(draw):
    """Row dicts with per-row key subsets (ragged schemas included)."""
    n = draw(st.integers(min_value=0, max_value=12))
    rows = []
    for _ in range(n):
        keys = draw(
            st.lists(st.sampled_from(FIELDS), unique=True, max_size=len(FIELDS))
        )
        rows.append({key: draw(cell_values) for key in keys})
    return rows


@settings(max_examples=200, deadline=None)
@given(rows=row_lists(), seq=st.integers(0, 9), last=st.booleans())
def test_row_round_trip_is_exact(rows, seq, last):
    batch = ColumnBatch.from_rows([dict(r) for r in rows], seq=seq, last=last)
    assert batch.to_rows() == rows
    assert batch.rows == rows  # cached bridge agrees with the eager one
    assert len(batch) == len(rows)
    assert list(batch) == rows


@settings(max_examples=200, deadline=None)
@given(rows=row_lists(), seq=st.integers(0, 9), last=st.booleans())
def test_from_rows_to_rows_round_trip_batch_equality(rows, seq, last):
    batch = ColumnBatch.from_rows([dict(r) for r in rows], seq=seq, last=last)
    again = ColumnBatch.from_rows(batch.to_rows(), seq=seq, last=last)
    assert again == batch


@settings(max_examples=100, deadline=None)
@given(rows=row_lists())
def test_values_matches_row_get(rows):
    batch = ColumnBatch.from_rows([dict(r) for r in rows])
    for name in FIELDS:
        assert batch.values(name) == [row.get(name) for row in rows]
        assert batch.null_mask(name) == [row.get(name) is None for row in rows]


@settings(max_examples=100, deadline=None)
@given(rows=row_lists(), data=st.data())
def test_take_matches_row_slicing(rows, data):
    batch = ColumnBatch.from_rows([dict(r) for r in rows])
    indexes = data.draw(
        st.lists(
            st.integers(0, max(len(rows) - 1, 0)),
            max_size=len(rows),
            unique=True,
        ).map(sorted)
        if rows
        else st.just([])
    )
    taken = batch.take(indexes)
    assert taken.to_rows() == [rows[i] for i in indexes]
    assert taken.seq == batch.seq
    assert taken.last == batch.last


def test_empty_punctuation_batch():
    batch = ColumnBatch.from_rows([], seq=3, last=True)
    assert len(batch) == 0
    assert batch.rows == []
    assert batch.last
    assert batch.seq == 3
    assert batch.values("text") == []


def test_head_truncates_and_terminates():
    rows = [{"a": i} for i in range(10)]
    batch = ColumnBatch.from_rows(rows, seq=2)
    head = batch.head(4)
    assert head.to_rows() == rows[:4]
    assert head.last  # LIMIT truncation punctuates the stream
    assert head.seq == 2
    assert RowBatch(rows, seq=2).head(4).rows == rows[:4]


def test_missing_is_distinct_from_null():
    rows = [{"a": 1, "b": None}, {"a": 2}]
    batch = ColumnBatch.from_rows(rows)
    assert batch.field("b") == [None, MISSING]
    assert batch.field("zzz") is None
    assert batch.values("b") == [None, None]
    assert batch.null_mask("b") == [True, True]
    assert batch.to_rows() == rows  # MISSING vanishes, NULL survives


def test_missing_sentinel_survives_pickling():
    # Process-backend transport pickles row payloads; identity checks
    # (`v is MISSING`) must keep working on the other side.
    assert pickle.loads(pickle.dumps(MISSING)) is MISSING


def test_take_identity_shortcut_preserves_batch():
    batch = ColumnBatch.from_rows([{"a": 1}, {"a": 2}])
    assert batch.take([0, 1]) is batch


# ---------------------------------------------------------------------------
# Vectorized expressions vs the scalar compiler
# ---------------------------------------------------------------------------

#: Expressions with hostile value mixes: NULL propagation, three-valued
#: AND/OR, TypeError-absorbing comparisons, zero divisors, regex/LIKE.
VECTOR_EXPRS = (
    "followers > 500",
    "followers >= 0 AND lang = 'en'",
    "text CONTAINS 'goal' OR followers < 10",
    "NOT (lang = 'es')",
    "followers IS NULL",
    "loc IS NOT NULL",
    "lang IN ('en', 'pt')",
    "text LIKE '%goal%'",
    "text MATCHES 'g.al'",
    "followers + 1 > 100",
    "followers / 0 IS NULL",
    "-followers < 0",
    "length(text) > 3",  # UDF: vector compiler must decline (None)
)

ROWS = [
    {"text": "goal!", "followers": 900, "lang": "en", "loc": "NYC"},
    {"text": "no match", "followers": None, "lang": "es", "loc": None},
    {"text": None, "followers": 0, "lang": "pt", "loc": ""},
    {"text": "Goal goal", "followers": 10, "lang": None, "loc": "London"},
    {"followers": 501, "lang": "en"},  # ragged: text/loc MISSING
]

SCHEMA = ("text", "followers", "lang", "loc")


@pytest.mark.parametrize("sql", VECTOR_EXPRS)
def test_vector_evaluator_matches_scalar(sql):
    registry = default_registry()
    ctx = EvalContext(clock=VirtualClock())
    expr = parse_expression(sql)
    scalar = compile_expr(expr, registry, SCHEMA, ctx)
    vector = compile_vector_expr(expr, registry, SCHEMA, ctx)
    if "length(" in sql:
        assert vector is None  # UDFs stay on the scalar path
        return
    assert vector is not None, sql
    batch = ColumnBatch.from_rows([dict(r) for r in ROWS])
    result = expand_column(vector(batch, ctx), len(batch))
    expected = [scalar(row, ctx) for row in batch.rows]
    assert result == expected, sql


def test_vector_and_does_not_mask_scalar_type_errors():
    """Scalar AND short-circuits: a False left arm skips a raising right
    arm. The vector compiler must refuse to combine arms that can raise
    (arithmetic is not "total"), or results would diverge."""
    registry = default_registry()
    ctx = EvalContext(clock=VirtualClock())
    expr = parse_expression("followers > 10000 AND text + 1 > 0")
    vector = compile_vector_expr(expr, registry, SCHEMA, ctx)
    if vector is None:
        return  # declining entirely is also sound
    batch = ColumnBatch.from_rows([dict(r) for r in ROWS])
    scalar = compile_expr(expr, registry, SCHEMA, ctx)
    for i, row in enumerate(batch.rows):
        try:
            expected = scalar(row, ctx)
        except TypeError:
            with pytest.raises(TypeError):
                expand_column(vector(batch, ctx), len(batch))
            return
        assert expand_column(vector(batch, ctx), len(batch))[i] == expected


def test_broadcast_expands_to_length():
    assert expand_column(Broadcast(True), 3) == [True, True, True]
    assert expand_column([1, 2], 2) == [1, 2]
