"""TQLSAN runtime sanitizer: off-mode is zero-cost, on-mode catches bugs.

Two halves. The positive half mirrors the tracing contract: with
``sanitize=False`` the planner installs zero SanitizeOperator wrappers
(structural assert, same technique as ``bench_observability``), and with
it on, a full query sweep across workers × backends is row-for-row
identical to the unsanitized run. The negative half feeds each check a
deliberately-broken operator and asserts the right ``TQL9xx`` fires —
every invariant is demonstrated to actually trip, not just documented.
"""

from __future__ import annotations

import pickle
import threading

import pytest

from repro import EngineConfig, TweeQL
from repro.clock import VirtualClock
from repro.engine.sanitizer import (
    SanitizeOperator,
    Sanitizer,
    lock_tracking,
    registered_lock,
)
from repro.engine.types import MISSING, ColumnBatch, QueryStats, RowBatch
from repro.errors import SanitizerError

SCHEMA = ("tweet_id", "text", "created_at", "lang", "followers")

ROWS = [
    {
        "tweet_id": 100 + i,
        "created_at": 1_307_000_000.0 + 13.0 * i,
        "text": ("goal! " if i % 3 else "quiet ") + f"tweet {i}",
        "lang": ("en", "es")[i % 2],
        "followers": (29 * i) % 1500,
    }
    for i in range(120)
]


def make_session(sanitize: bool, workers: int = 1, backend: str = "thread"):
    config = EngineConfig(
        sanitize=sanitize,
        workers=workers,
        shard_backend=backend,
        clamp_workers=False,
    )
    session = TweeQL(config=config)
    session.register_source(
        "s", lambda: iter([dict(r) for r in ROWS]), SCHEMA
    )
    return session


def wrapper_count(pipeline) -> int:
    count = 0
    node = pipeline
    while node is not None:
        if isinstance(node, SanitizeOperator):
            count += 1
        node = getattr(node, "_child", None) or getattr(node, "_source", None)
    return count


def fresh_sanitizer() -> Sanitizer:
    return Sanitizer(VirtualClock())


def expect(code: str, operator) -> SanitizerError:
    with pytest.raises(SanitizerError) as excinfo:
        for _batch in operator:
            pass
    assert excinfo.value.code == code
    return excinfo.value


# ---------------------------------------------------------------------------
# Off-mode: structurally identical to a build without the feature
# ---------------------------------------------------------------------------


def test_sanitize_off_adds_no_wrappers():
    plan = make_session(sanitize=False).plan("SELECT text FROM s;")
    assert plan.sanitizer is None
    assert wrapper_count(plan.pipeline) == 0


def test_sanitize_on_wraps_every_stage_and_forces_tracer():
    plan = make_session(sanitize=True).plan(
        "SELECT text FROM s WHERE followers > 10;"
    )
    assert plan.sanitizer is not None
    # SanitizerError spans and the close-time reconcile() need a tracer
    # even when EngineConfig.tracing stayed off.
    assert plan.tracer is not None
    assert wrapper_count(plan.pipeline) >= 2  # at least Scan + Project


def test_env_var_enables_sanitizer(monkeypatch):
    monkeypatch.setenv("TWEEQL_SAN", "1")
    plan = make_session(sanitize=False).plan("SELECT text FROM s;")
    assert plan.sanitizer is not None
    assert wrapper_count(plan.pipeline) >= 2


def test_env_var_zero_means_off(monkeypatch):
    monkeypatch.setenv("TWEEQL_SAN", "0")
    plan = make_session(sanitize=False).plan("SELECT text FROM s;")
    assert plan.sanitizer is None


# ---------------------------------------------------------------------------
# End-to-end: sanitized results identical, zero violations on clean plans
# ---------------------------------------------------------------------------

SWEEP_SQLS = [
    "SELECT text FROM s WHERE text CONTAINS 'goal';",
    "SELECT lower(text) AS t, length(text) AS n FROM s WHERE followers > 40;",
    "SELECT COUNT(*) AS n, lang FROM s GROUP BY lang WINDOW 120 seconds;",
    "SELECT text FROM s WHERE followers > 10 LIMIT 7;",
]


@pytest.mark.parametrize("workers", [1, 4])
def test_sanitized_run_matches_unsanitized(workers):
    for sql in SWEEP_SQLS:
        baseline = make_session(sanitize=False, workers=workers)
        expected = baseline.query(sql).all()
        sanitized = make_session(sanitize=True, workers=workers)
        handle = sanitized.query(sql)
        assert handle.all() == expected, sql
        handle.close()  # runs the mandatory at_close checks


# ---------------------------------------------------------------------------
# Negative tests: every check fires on a deliberately-broken producer
# ---------------------------------------------------------------------------


def sanitize(child, stats=None) -> SanitizeOperator:
    return SanitizeOperator(
        child, fresh_sanitizer(), name="Broken", lane="main", stats=stats
    )


def test_tql901_seq_regression_fires():
    def broken():
        yield RowBatch([], seq=1)
        yield RowBatch([], seq=0, last=True)

    error = expect("TQL901", sanitize(broken()))
    assert "seq regression" in str(error)
    assert error.operator == "Broken"


def test_tql901_equal_seq_fires():
    def broken():
        yield RowBatch([], seq=3)
        yield RowBatch([], seq=3, last=True)

    expect("TQL901", sanitize(broken()))


def test_tql902_batch_after_last_fires():
    def broken():
        yield RowBatch([], seq=0, last=True)
        yield RowBatch([], seq=1)  # double punctuation / late batch

    error = expect("TQL902", sanitize(broken()))
    assert "after last=True" in str(error)


def test_tql902_missing_punctuation_fires():
    def broken():
        yield RowBatch([], seq=0)  # stream just stops, no last=True

    expect("TQL902", sanitize(broken()))


def test_tql903_column_length_mismatch_fires():
    def broken():
        yield ColumnBatch({"a": [1, 2, 3]}, 2, seq=0, last=True)

    expect("TQL903", sanitize(broken()))


def test_tql903_stale_negative_cache_fires():
    def broken():
        batch = ColumnBatch({"a": [1, 2]}, 2, seq=0, last=True)
        batch._absent = {"a"}  # claims 'a' absent; a real column exists
        yield batch

    error = expect("TQL903", sanitize(broken()))
    assert "negative-probe cache" in str(error)


def test_tql904_missing_leak_fires():
    def broken():
        yield RowBatch([{"a": MISSING}], seq=0, last=True)

    error = expect("TQL904", sanitize(broken()))
    assert "MISSING" in str(error)


def test_tql905_post_handoff_mutation_fires():
    sanitizer = fresh_sanitizer()
    rows = [{"a": 1}, {"a": 2}]
    sanitizer.handoff.seal(0, rows)
    rows[1]["a"] = 99  # the exchange mutating after enqueue
    with pytest.raises(SanitizerError) as excinfo:
        sanitizer.handoff.verify(0, rows)
    assert excinfo.value.code == "TQL905"


def test_tql905_clean_handoff_passes():
    sanitizer = fresh_sanitizer()
    for i in range(3):
        sanitizer.handoff.seal(1, [{"a": i}])
    for i in range(3):
        sanitizer.handoff.verify(1, [{"a": i}])


def test_tql906_stats_regression_fires():
    stats = QueryStats()

    def broken():
        stats.rows_scanned = 10
        yield RowBatch([], seq=0)
        stats.rows_scanned = 5  # counter went backwards
        yield RowBatch([], seq=1, last=True)

    expect("TQL906", sanitize(broken(), stats=stats))


def test_tql907_reconcile_mismatch_fires_at_close():
    from repro.obs.trace import Tracer

    with lock_tracking():
        sanitizer = fresh_sanitizer()
        tracer = Tracer(VirtualClock())
        tracer.probe("Scan(s)", "main").rows = 100
        tracer.probe("Output", "main").rows = 7
        stats = QueryStats()
        stats.rows_scanned = 100
        stats.rows_emitted = 9  # disagrees with the Output probe

        class FakeHandle:
            pass

        handle = FakeHandle()
        handle.tracer = tracer
        handle.stats = stats
        with pytest.raises(SanitizerError) as excinfo:
            sanitizer.at_close(handle, exhausted=True)
        assert excinfo.value.code == "TQL907"
        # An abandoned (non-exhausted) query legitimately skips it.
        sanitizer.at_close(handle, exhausted=False)


def test_tql910_lock_order_cycle_detected():
    with lock_tracking() as registry:
        a = registered_lock("test.a")
        b = registered_lock("test.b")
        with a:
            with b:
                pass
        with b:
            with a:  # opposite order: potential deadlock
                pass
        report = registry.report()
        assert report and report[0][0] == "TQL910"
        assert "test.a" in report[0][1] and "test.b" in report[0][1]
        with pytest.raises(SanitizerError) as excinfo:
            registry.check()
        assert excinfo.value.code == "TQL910"


def test_lock_registry_consistent_order_is_clean():
    with lock_tracking() as registry:
        a = registered_lock("test.a")
        b = registered_lock("test.b")
        for _ in range(3):
            with a:
                with b:
                    pass
        assert registry.report() == []
        registry.check()  # no raise
        assert ("test.a", "test.b") in registry.edges()


def test_lock_registry_rlock_reentry_not_a_cycle():
    with lock_tracking() as registry:
        a = registered_lock("test.r", rlock=True)
        with a:
            with a:  # reentrant re-acquire must not self-edge
                pass
        assert registry.report() == []


def test_tql911_cross_thread_pull_fires():
    def source():
        for seq in range(5):
            yield RowBatch([], seq=seq, last=seq == 4)

    operator = sanitize(source())
    iterator = iter(operator)
    next(iterator)  # binds the stage to this thread

    caught: list[BaseException] = []

    def pull_from_other_thread():
        try:
            next(iterator)
        except BaseException as error:  # noqa: BLE001 — assertion target
            caught.append(error)

    thread = threading.Thread(target=pull_from_other_thread)
    thread.start()
    thread.join()
    assert caught and isinstance(caught[0], SanitizerError)
    assert caught[0].code == "TQL911"


# ---------------------------------------------------------------------------
# Error plumbing
# ---------------------------------------------------------------------------


def test_sanitizer_error_pickles_for_process_backend():
    error = SanitizerError(
        "TQL901: boom", code="TQL901", operator="Filter", lane="worker-2",
        hint="fix it", batch_seq=7,
    )
    clone = pickle.loads(pickle.dumps(error))
    assert isinstance(clone, SanitizerError)
    assert clone.code == "TQL901"
    assert clone.operator == "Filter"
    assert clone.lane == "worker-2"
    assert clone.batch_seq == 7
    assert "boom" in str(clone)


def test_violation_carries_span_and_diagnostic():
    from repro.obs.trace import Tracer

    with lock_tracking():
        sanitizer = fresh_sanitizer()
        tracer = Tracer(VirtualClock())
        error = sanitizer.violation(
            "TQL901", "seq went backwards", operator="Filter",
            lane="worker-1", tracer=tracer,
        )
        assert error.code == "TQL901"
        assert error.span is not None and error.span.kind == "sanitizer"
        assert error.span.attrs["code"] == "TQL901"
        assert error.diagnostic is not None
        assert error.diagnostic.as_dict()["code"] == "TQL901"
        # The violation also landed in the trace record itself.
        assert tracer.spans_of("sanitizer")


def test_clean_batches_pass_through_untouched():
    batches = [
        RowBatch([{"a": 1}], seq=0),
        ColumnBatch.from_rows([{"a": 2}], seq=1),
        RowBatch([], seq=2, last=True),
    ]
    out = list(sanitize(iter(batches)))
    assert out == batches
