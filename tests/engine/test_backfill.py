"""The hybrid live + historical tier: backfill splits are invisible.

The acceptance sweep: a time-windowed query over a session with a
populated historical store and ``backfill=True`` must produce rows
row-for-row identical to a pure-live run of the same query, across
batch {1, 256} × workers {1, 4}. Plus the planner's window extraction,
the EXPLAIN note, the stream-tap archival wiring, the TQL311 lint, and
the instant-backfill property (historical rows arrive without advancing
the virtual clock — the whole point of the tier).
"""

from __future__ import annotations

import shutil

import pytest

from repro import EngineConfig, TweeQL
from repro.engine.planner import _time_window, split_conjuncts
from repro.sql.analysis import analyze_sql
from repro.sql.parser import parse
from repro.storage import HistoricalStore
from repro.twitter.workloads import soccer_match_scenario

QUERY = (
    "SELECT tweet_id, text, created_at FROM twitter "
    "WHERE text CONTAINS 'tevez';"
)


@pytest.fixture(scope="module")
def scenario():
    return soccer_match_scenario(intensity=0.4)


@pytest.fixture(scope="module")
def baseline_ids(scenario):
    """The pure-live run every hybrid configuration must reproduce."""
    session = TweeQL.for_scenarios(scenario, delivery_ratio=1.0)
    return [r["tweet_id"] for r in session.query(QUERY).all()]


@pytest.fixture(scope="module")
def archive_path(scenario, tmp_path_factory):
    """A store holding the stream prefix up to ~20 min past kickoff.

    Built by running a firehose query on an archiving session and closing
    it mid-stream: exactly the "TweeQL has been recording for a while
    before the analyst shows up" setup the hybrid tier exists for.
    """
    path = str(tmp_path_factory.mktemp("backfill") / "archive.db")
    stop_at = scenario.start + 1800.0 + 1200.0  # build-up + 20 min played
    session = TweeQL.for_scenarios(
        scenario,
        config=EngineConfig(storage_path=path),
        delivery_ratio=1.0,
    )
    handle = session.query("SELECT created_at FROM twitter;")
    for row in handle:
        if row["created_at"] > stop_at:
            break
    handle.close()
    session.close()  # stops the writer (flushing it) and closes the store
    with HistoricalStore(path) as store:
        assert store.watermark() is not None
        assert store.watermark() >= stop_at
        assert len(store) > 1000
    return path


def _hybrid_session(scenario, path, **config_kwargs):
    return TweeQL.for_scenarios(
        scenario,
        config=EngineConfig(
            storage_path=path, backfill=True, **config_kwargs
        ),
        delivery_ratio=1.0,
    )


# ---------------------------------------------------------------------------
# Row-for-row equivalence sweep
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("batch_size", [1, 256])
@pytest.mark.parametrize("workers", [1, 4])
def test_backfill_plus_live_matches_pure_live(
    scenario, baseline_ids, archive_path, tmp_path, batch_size, workers
):
    # Each sweep point gets its own store copy: the hybrid session's own
    # writer re-archives the live tail, which would otherwise grow the
    # watermark between points.
    path = str(tmp_path / "store.db")
    shutil.copy(archive_path, path)
    session = _hybrid_session(
        scenario, path, batch_size=batch_size, workers=workers
    )
    try:
        handle = session.query(QUERY)
        ids = [r["tweet_id"] for r in handle.all()]
        assert ids == baseline_ids
        assert handle.backfill_rows > 0  # the store really served rows
    finally:
        session.close()


def test_windowed_backfill_matches_pure_live(scenario, archive_path, tmp_path):
    window_start = scenario.start + 900.0
    windowed = (
        "SELECT tweet_id FROM twitter WHERE text CONTAINS 'tevez' "
        f"AND created_at >= {window_start};"
    )
    live = TweeQL.for_scenarios(scenario, delivery_ratio=1.0)
    expected = [r["tweet_id"] for r in live.query(windowed).all()]

    path = str(tmp_path / "store.db")
    shutil.copy(archive_path, path)
    session = _hybrid_session(scenario, path)
    try:
        handle = session.query(windowed)
        assert [r["tweet_id"] for r in handle.all()] == expected
        assert handle.backfill_rows > 0
    finally:
        session.close()


# ---------------------------------------------------------------------------
# Instant backfill: history arrives before the clock moves
# ---------------------------------------------------------------------------


def test_backfill_rows_arrive_without_advancing_the_clock(
    scenario, archive_path, tmp_path
):
    path = str(tmp_path / "store.db")
    shutil.copy(archive_path, path)
    # batch_size=1 keeps the scan from pulling the first live row into
    # the same batch as the tail of the backfill.
    session = _hybrid_session(scenario, path, batch_size=1)
    try:
        start = session.clock.now
        assert start == scenario.start
        handle = session.query(QUERY)
        rows = handle.fetch(50)
        assert len(rows) == 50
        assert session.clock.now == start  # no live pull, no virtual wait
        assert all(r["created_at"] >= scenario.start for r in rows)
        handle.close()
    finally:
        session.close()


# ---------------------------------------------------------------------------
# Planner window extraction and EXPLAIN surface
# ---------------------------------------------------------------------------


def _window_of(where: str):
    statement = parse(f"SELECT text FROM twitter WHERE {where};")
    return _time_window(split_conjuncts(statement.where))


def test_time_window_reads_bounds_in_both_orientations():
    assert _window_of("created_at >= 100.0 AND text CONTAINS 'a'") == (
        100.0,
        None,
    )
    assert _window_of("100.0 <= created_at AND created_at < 200.0") == (
        100.0,
        200.0,
    )
    # Multiple bounds tighten to the intersection.
    start, end = _window_of(
        "created_at >= 100.0 AND created_at >= 150.0 AND created_at < 300.0"
    )
    assert (start, end) == (150.0, 300.0)


def test_time_window_widens_non_strict_upper_bound():
    start, end = _window_of("created_at <= 200.0")
    assert start is None
    assert end > 200.0  # superset: <= needs the next float up as the cut


def test_time_window_ignores_other_fields():
    assert _window_of("followers > 100 AND text CONTAINS 'a'") == (None, None)


def test_explain_notes_backfill_split(scenario, archive_path, tmp_path):
    path = str(tmp_path / "store.db")
    shutil.copy(archive_path, path)
    session = _hybrid_session(scenario, path)
    try:
        explain = session.explain(QUERY)
        assert "Backfill: historical store" in explain
    finally:
        session.close()


def test_no_backfill_without_opt_in(scenario, archive_path, tmp_path):
    path = str(tmp_path / "store.db")
    shutil.copy(archive_path, path)
    session = TweeQL.for_scenarios(
        scenario,
        config=EngineConfig(storage_path=path),  # store, but no backfill
        delivery_ratio=1.0,
    )
    try:
        explain = session.explain(QUERY)
        assert "Backfill" not in explain
    finally:
        session.close()


# ---------------------------------------------------------------------------
# Archival tap: the live path feeds the store as a side effect
# ---------------------------------------------------------------------------


def test_session_archives_delivered_tweets(scenario, tmp_path):
    path = str(tmp_path / "tap.db")
    session = TweeQL.for_scenarios(
        scenario,
        config=EngineConfig(storage_path=path, batch_size=64),
        delivery_ratio=1.0,
    )
    handle = session.query("SELECT text FROM twitter;")
    handle.fetch(200)
    handle.close()
    session.storage_writer.flush()
    archived = len(session.store)
    assert archived >= 200  # every *delivered* tweet, not only fetched rows
    assert session.storage_writer.metrics()["written"] == archived
    session.close()
    with HistoricalStore(path) as store:  # durable after close
        assert len(store) == archived


def test_session_close_is_idempotent(scenario, tmp_path):
    session = TweeQL.for_scenarios(
        scenario,
        config=EngineConfig(storage_path=str(tmp_path / "c.db")),
    )
    session.close()
    session.close()
    assert session.api.tap is None


# ---------------------------------------------------------------------------
# TQL311: unbounded backfill lint
# ---------------------------------------------------------------------------


def test_tql311_fires_only_for_unbounded_backfill_queries(tmp_path):
    config = EngineConfig(
        storage_path=str(tmp_path / "lint.db"), backfill=True
    )
    unbounded = analyze_sql(
        "SELECT text FROM twitter WHERE text CONTAINS 'quake';",
        config=config,
    )
    assert "TQL311" in [d.code for d in unbounded.infos]
    bounded = analyze_sql(
        "SELECT text FROM twitter WHERE text CONTAINS 'quake' "
        "AND created_at >= 1307838600.0;",
        config=config,
    )
    assert "TQL311" not in [d.code for d in bounded.diagnostics]


def test_tql311_silent_without_backfill_config():
    result = analyze_sql(
        "SELECT text FROM twitter WHERE text CONTAINS 'quake';",
        config=EngineConfig(),
    )
    assert "TQL311" not in [d.code for d in result.diagnostics]
