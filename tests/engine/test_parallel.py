"""Cross-shard equivalence: sharded execution must be indistinguishable
from the serial engine.

The property-based suite generates small seeded tweet streams and asserts
that for every supported query shape (filter, UDF projection, GROUP BY +
window, confidence window, LIMIT) the sharded engine at workers ∈ {1, 2, 4}
yields *row-for-row identical* results — order included — and consistent
aggregated stats versus the serial engine. The paper's three demo queries
get the same treatment on the simulated firehose (the PR's acceptance
criterion), plus EXPLAIN and serial-fallback coverage.
"""

from __future__ import annotations

import pytest

pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import EngineConfig, TweeQL
from repro.engine.confidence import ConfidencePolicy
from tests.integration.test_paper_queries import QUERY_1, QUERY_2, QUERY_3

BASE_TS = 1_307_000_000.0
WORDS = ("goal", "obama", "quake", "rain", "vote", "march")
LANGS = ("en", "es", "pt")
LOCS = ("New York, NY", "London", "", "Tokyo", "nowhere-ville")
SCHEMA = ("tweet_id", "text", "loc", "created_at", "lang", "followers")

#: The equivalence query shapes. Stats marked ``full`` must aggregate to
#: exactly the serial counters; ``limit`` shapes stop scanning early in
#: serial mode, so only the output-row counter is comparable.
QUERY_SHAPES = {
    "filter": (
        "SELECT text, followers FROM s "
        "WHERE text CONTAINS 'goal' AND followers > 500;",
        "full",
    ),
    "udf": (
        "SELECT lower(text) AS t, length(text) AS n, lang FROM s "
        "WHERE followers >= 0;",
        "full",
    ),
    "group_window": (
        "SELECT COUNT(*) AS n, AVG(followers) AS f, lang FROM s "
        "GROUP BY lang WINDOW 120 seconds;",
        "full",
    ),
    "order_limit_window": (
        "SELECT COUNT(*) AS n, lang FROM s GROUP BY lang "
        "WINDOW 300 seconds ORDER BY COUNT(*) DESC LIMIT 2;",
        "full",
    ),
    "limit": (
        "SELECT text FROM s WHERE followers > 200 LIMIT 7;",
        "limit",
    ),
}

#: Stats that must aggregate to exactly the serial counters. Excludes
#: ``windows_closed``: a window spanning k shards closes once per shard.
EXACT_STATS = (
    "rows_scanned",
    "rows_after_filter",
    "predicate_evaluations",
    "rows_emitted",
    "groups_emitted",
)


@st.composite
def tweet_streams(draw):
    """A small time-ordered stream with timestamp ties and gaps."""
    n = draw(st.integers(min_value=10, max_value=70))
    rows = []
    ts = BASE_TS
    for i in range(n):
        ts += draw(st.sampled_from((0.0, 1.0, 7.0, 45.0, 400.0)))
        words = draw(st.lists(st.sampled_from(WORDS), min_size=1, max_size=3))
        rows.append(
            {
                "tweet_id": 1000 + i,
                "created_at": ts,
                "text": " ".join(words),
                "lang": draw(st.sampled_from(LANGS)),
                "followers": draw(st.integers(min_value=0, max_value=2000)),
                "loc": draw(st.sampled_from(LOCS)),
            }
        )
    return rows


def make_session(rows, workers, policy=None, use_eddy=False, batch_size=256):
    config = EngineConfig(
        workers=workers,
        confidence_policy=policy,
        use_eddy=use_eddy,
        batch_size=batch_size,
    )
    session = TweeQL(config=config)
    session.register_source(
        "s", lambda: iter([dict(r) for r in rows]), SCHEMA
    )
    return session


def run(session, sql):
    handle = session.query(sql)
    rows = handle.all()
    stats = handle.stats.as_dict()
    handle.close()
    return rows, stats


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    rows=tweet_streams(),
    workers=st.sampled_from((1, 2, 4)),
    batch=st.sampled_from((1, 7, 256)),
    shape=st.sampled_from(sorted(QUERY_SHAPES)),
)
def test_sharded_matches_serial(rows, workers, batch, shape):
    """Every (workers, batch_size) point must reproduce the row-at-a-time
    serial engine byte for byte — batch size is a pure performance knob."""
    sql, stats_mode = QUERY_SHAPES[shape]
    serial_rows, serial_stats = run(
        make_session(rows, workers=1, batch_size=1), sql
    )
    sharded_rows, sharded_stats = run(
        make_session(rows, workers=workers, batch_size=batch), sql
    )
    assert sharded_rows == serial_rows
    if stats_mode == "full":
        for key in EXACT_STATS:
            assert sharded_stats[key] == serial_stats[key], key
    else:
        assert sharded_stats["rows_emitted"] == serial_stats["rows_emitted"]


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    rows=tweet_streams(),
    workers=st.sampled_from((2, 4)),
    batch=st.sampled_from((1, 7, 256)),
)
def test_confidence_window_matches_serial(rows, workers, batch):
    """Confidence-triggered emission: the hardest shape — age-based flushes
    fire on *other groups'* rows, which punctuation must replicate."""
    policy = ConfidencePolicy(
        ci_halfwidth=200.0, max_age_seconds=300.0, min_count=2
    )
    sql = "SELECT AVG(followers) AS f, lang FROM s GROUP BY lang;"
    serial_rows, serial_stats = run(
        make_session(rows, workers=1, policy=policy, batch_size=1), sql
    )
    sharded_rows, sharded_stats = run(
        make_session(rows, workers=workers, policy=policy, batch_size=batch),
        sql,
    )
    assert sharded_rows == serial_rows
    for key in EXACT_STATS:
        assert sharded_stats[key] == serial_stats[key], key


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(rows=tweet_streams(), workers=st.sampled_from((2, 4)))
def test_eddy_filtering_matches_serial(rows, workers):
    """Per-shard eddies may reorder predicates independently, but the row
    sequence must still match the serial engine exactly."""
    sql = (
        "SELECT text FROM s "
        "WHERE text CONTAINS 'goal' AND followers > 300 AND lang = 'en';"
    )
    serial_rows, _ = run(make_session(rows, workers=1, use_eddy=True), sql)
    sharded_rows, _ = run(
        make_session(rows, workers=workers, use_eddy=True), sql
    )
    assert sharded_rows == serial_rows


# ---------------------------------------------------------------------------
# Acceptance: the paper's demo queries, byte-identical at every
# (batch_size, workers) point against the row-at-a-time serial engine
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "sql, limit",
    [
        pytest.param(QUERY_1, 400, id="query-1-sentiment-geocode"),
        pytest.param(QUERY_2, 2000, id="query-2-keyword-bbox"),
        pytest.param(QUERY_3, None, id="query-3-regional-avg"),
    ],
)
def test_paper_queries_identical_across_batch_and_workers(
    news_week, sql, limit
):
    def run_config(workers, batch):
        session = TweeQL.for_scenarios(
            news_week,
            seed=11,
            config=EngineConfig(workers=workers, batch_size=batch),
        )
        handle = session.query(sql)
        rows = handle.all(limit=limit)
        handle.close()
        return rows, handle

    baseline, _ = run_config(workers=1, batch=1)
    for workers in (1, 4):
        for batch in (7, 256):
            rows, handle = run_config(workers, batch)
            assert rows == baseline, (workers, batch)
            if workers > 1:
                assert "Exchange" in handle.explain()
                assert "Merge" in handle.explain()
            assert f"Batch: {batch} rows/batch" in handle.explain()
    rows, _ = run_config(workers=4, batch=1)
    assert rows == baseline


# ---------------------------------------------------------------------------
# Plan inspection
# ---------------------------------------------------------------------------


STATIC_ROWS = [
    {
        "tweet_id": 1000 + i,
        "created_at": BASE_TS + 30.0 * i,
        "text": f"goal number {i}",
        "lang": "en",
        "followers": 10 * i,
        "loc": "London",
    }
    for i in range(40)
]


def test_explain_renders_exchange_and_merge():
    session = make_session(STATIC_ROWS, workers=4)
    text = session.explain("SELECT text FROM s WHERE followers > 10;")
    assert "Exchange: hash(tweet_id) over 4 shards" in text
    assert "Merge: 4-way ordered merge" in text


def test_explain_partitions_aggregates_by_group_key():
    session = make_session(STATIC_ROWS, workers=2)
    text = session.explain(
        "SELECT COUNT(*) AS n, lang FROM s GROUP BY lang WINDOW 60 seconds;"
    )
    assert "Exchange: hash(lang) over 2 shards" in text


@pytest.mark.parametrize(
    "sql, reason_fragment",
    [
        (
            "SELECT COUNT(*) AS n FROM s WINDOW 60 seconds;",
            "global aggregates",
        ),
        (
            "SELECT COUNT(*) AS n, lang FROM s GROUP BY lang "
            "WINDOW 10 tweets;",
            "count-based windows",
        ),
        (
            "SELECT meandev(followers) AS d FROM s;",
            "stateful UDF",
        ),
        (
            "SELECT text, now() AS t FROM s;",
            "now()",
        ),
    ],
)
def test_order_dependent_shapes_fall_back_to_serial(sql, reason_fragment):
    session = make_session(STATIC_ROWS, workers=4)
    text = session.explain(sql)
    assert "Parallel: serial fallback" in text
    assert reason_fragment in text
    assert "Exchange" not in text


def test_serial_fallback_still_executes():
    sql = "SELECT meandev(followers) AS d FROM s;"
    serial_rows, _ = run(make_session(STATIC_ROWS, workers=1), sql)
    fallback_rows, _ = run(make_session(STATIC_ROWS, workers=4), sql)
    assert fallback_rows == serial_rows
    assert serial_rows


def test_shard_stats_expose_per_worker_counters():
    session = make_session(STATIC_ROWS, workers=4)
    handle = session.query("SELECT text FROM s WHERE followers > 10;")
    rows = handle.all()
    handle.close()
    # Exchange stage first, then one entry per worker.
    assert len(handle.shard_stats) == 5
    exchange_stats = handle.shard_stats[0]
    assert exchange_stats.rows_scanned == len(STATIC_ROWS)
    worker_emitted = sum(s.rows_emitted for s in handle.shard_stats[1:])
    assert worker_emitted == len(rows) == handle.stats.rows_emitted
    assert len(handle.shard_service_stats) == 5
