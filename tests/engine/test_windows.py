"""Window assignment."""

from repro.engine.windows import next_close_time, window_start, windows_containing
from repro.sql.ast import WindowSpec


def test_tumbling_single_window():
    spec = WindowSpec(size_seconds=60.0)
    windows = list(windows_containing(125.0, spec))
    assert windows == [(120.0, 180.0)]


def test_tumbling_boundary_belongs_to_next_window():
    spec = WindowSpec(size_seconds=60.0)
    assert list(windows_containing(120.0, spec)) == [(120.0, 180.0)]


def test_sliding_membership_count():
    spec = WindowSpec(size_seconds=300.0, slide_seconds=60.0)
    windows = list(windows_containing(1000.0, spec))
    assert len(windows) == 5
    for start, end in windows:
        assert start <= 1000.0 < end
        assert end - start == 300.0


def test_sliding_windows_aligned_to_slide():
    spec = WindowSpec(size_seconds=300.0, slide_seconds=60.0)
    for start, _end in windows_containing(1234.0, spec):
        assert start % 60.0 == 0.0


def test_window_start_alignment():
    assert window_start(125.0, 60.0, 60.0) == 120.0
    assert window_start(59.9, 60.0, 60.0) == 0.0


def test_window_spec_defaults_tumbling():
    spec = WindowSpec(size_seconds=60.0)
    assert spec.slide == 60.0
    assert spec.tumbling
    sliding = WindowSpec(size_seconds=60.0, slide_seconds=10.0)
    assert not sliding.tumbling


def test_next_close_time():
    assert next_close_time({}) is None
    windows = {(0.0, 60.0): object(), (60.0, 120.0): object()}
    assert next_close_time(windows) == 60.0
