"""QueryHandle lifecycle: close() must release everything, exactly once.

Covers the two bugs fixed alongside the sharded engine — close()/to_csv()
never drained in-flight async service calls, and to_csv() appended a
``created_at`` column that was not in the schema — plus the new sharded
concerns: worker threads join on close, and interleaved fetch()/all()
never duplicates or drops rows at any worker count.
"""

from __future__ import annotations

import csv
import threading

import pytest

from repro import EngineConfig, TweeQL
from repro.errors import ExecutionError
from repro.twitter.users import UserPopulation
from repro.twitter.workloads import soccer_match_scenario

BASE_TS = 1_307_000_000.0
SCHEMA = ("tweet_id", "text", "loc", "created_at", "lang", "followers")

ROWS = [
    {
        "tweet_id": 1000 + i,
        "created_at": BASE_TS + 15.0 * i,
        "text": f"goal {i}" if i % 3 else f"quiet {i}",
        "lang": ("en", "es")[i % 2],
        "followers": 17 * i % 900,
        "loc": "London",
    }
    for i in range(120)
]


def make_session(workers=1, **config_kwargs):
    session = TweeQL(config=EngineConfig(workers=workers, **config_kwargs))
    session.register_source(
        "s", lambda: iter([dict(r) for r in ROWS]), SCHEMA
    )
    return session


def scenario_session(workers=1, **config_kwargs):
    scenario = soccer_match_scenario(
        seed=11, population=UserPopulation(size=300, seed=11)
    )
    return TweeQL.for_scenarios(
        scenario, seed=11, config=EngineConfig(workers=workers, **config_kwargs)
    )


# ---------------------------------------------------------------------------
# close() releases connections and threads
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("workers", [1, 3])
def test_close_mid_stream_releases_api_connections(workers):
    session = scenario_session(workers=workers)
    handle = session.query("SELECT text FROM twitter WHERE text CONTAINS 'goal';")
    rows = handle.fetch(5)
    assert rows
    assert session.api.open_connections == 1
    handle.close()
    assert session.api.open_connections == 0
    # close() is idempotent.
    handle.close()
    assert session.api.open_connections == 0


@pytest.mark.parametrize("workers", [1, 3])
def test_close_mid_stream_joins_worker_threads(workers):
    baseline = threading.active_count()
    session = make_session(workers=workers)
    handle = session.query("SELECT text FROM s WHERE followers > 100;")
    assert handle.fetch(3)
    handle.close()
    assert threading.active_count() == baseline


def test_exhaustion_joins_worker_threads_without_close():
    baseline = threading.active_count()
    session = make_session(workers=4)
    handle = session.query("SELECT text FROM s WHERE followers > 100;")
    list(handle)
    assert threading.active_count() == baseline


@pytest.mark.parametrize("workers", [1, 3])
def test_iteration_after_close_raises(workers):
    session = make_session(workers=workers)
    handle = session.query("SELECT text FROM s;")
    handle.fetch(2)
    handle.close()
    with pytest.raises(ExecutionError):
        iter(handle)
    with pytest.raises(ExecutionError):
        handle.fetch(1)
    with pytest.raises(ExecutionError):
        handle.all()


# ---------------------------------------------------------------------------
# interleaved fetch never duplicates or drops rows
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("workers", [1, 4])
def test_interleaved_fetch_matches_single_drain(workers):
    sql = "SELECT text, followers FROM s WHERE followers > 50;"
    piecemeal = make_session(workers=workers).query(sql)
    collected = piecemeal.fetch(13) + piecemeal.fetch(1) + piecemeal.fetch(29)
    collected += piecemeal.all()
    piecemeal.close()
    # fetch() past end of stream returns empty, not an error.
    reference = make_session(workers=workers).query(sql).all()
    assert collected == reference


@pytest.mark.parametrize("workers", [1, 4])
def test_fetch_after_exhaustion_is_empty(workers):
    handle = make_session(workers=workers).query("SELECT text FROM s;")
    handle.all()
    assert handle.fetch(5) == []


# ---------------------------------------------------------------------------
# drain-on-release regression (bug: close()/to_csv() skipped drain)
# ---------------------------------------------------------------------------


def test_close_drains_in_flight_service_calls():
    session = scenario_session(latency_mode="async", lookahead=16)
    handle = session.query(
        "SELECT latitude(loc) AS lat, text FROM twitter "
        "WHERE text CONTAINS 'goal';"
    )
    handle.fetch(4)  # prefetch leaves requests in flight
    handle.close()
    assert not session.geocode_managed._in_flight


def test_to_csv_drains_in_flight_service_calls(tmp_path):
    session = scenario_session(latency_mode="async", lookahead=16)
    handle = session.query(
        "SELECT latitude(loc) AS lat, text FROM twitter "
        "WHERE text CONTAINS 'goal';"
    )
    out = tmp_path / "rows.csv"
    written = handle.to_csv(str(out), limit=4)
    assert written == 4
    assert not session.geocode_managed._in_flight
    handle.close()


# ---------------------------------------------------------------------------
# to_csv column regression (bug: created_at appended even when absent)
# ---------------------------------------------------------------------------


def test_to_csv_columns_come_from_schema_only(tmp_path):
    session = make_session()
    handle = session.query(
        "SELECT COUNT(*) AS n, lang FROM s GROUP BY lang WINDOW 300 seconds;"
    )
    out = tmp_path / "agg.csv"
    count = handle.to_csv(str(out))
    handle.close()
    with open(out, newline="", encoding="utf-8") as f:
        reader = csv.reader(f)
        header = next(reader)
        body = list(reader)
    expected = [name for name in handle.schema if not name.startswith("__")]
    assert header == expected
    assert "created_at" not in header
    assert len(body) == count > 0


@pytest.mark.parametrize("workers", [1, 4])
def test_to_csv_matches_all(tmp_path, workers):
    sql = "SELECT text, followers FROM s WHERE followers > 50;"
    out = tmp_path / f"w{workers}.csv"
    writer = make_session(workers=workers)
    written = writer.query(sql).to_csv(str(out))
    reference = make_session(workers=workers).query(sql).all()
    assert written == len(reference)
    with open(out, newline="", encoding="utf-8") as f:
        rows = list(csv.DictReader(f))
    assert [r["text"] for r in rows] == [r["text"] for r in reference]
