"""End-to-end session behaviour: queries, UDFs, INTO tables, configs."""

import pytest

from repro import ConfidencePolicy, EngineConfig, TweeQL
from repro.geo.service import LatencyModel


def test_simple_select_rows_have_schema_fields(soccer_session):
    handle = soccer_session.query(
        "SELECT text, screen_name FROM twitter WHERE text contains 'tevez';"
    )
    rows = handle.fetch(5)
    assert rows
    for row in rows:
        assert "tevez" in row["text"].lower()
        assert row["screen_name"].startswith("user")
    assert handle.schema[:2] == ("text", "screen_name")


def test_fetch_then_fetch_continues(soccer_session):
    handle = soccer_session.query(
        "SELECT text FROM twitter WHERE text contains 'soccer';"
    )
    first = handle.fetch(3)
    second = handle.fetch(3)
    assert len(first) == len(second) == 3
    assert [r["text"] for r in first] != [r["text"] for r in second]


def test_limit_stops_stream(soccer_session):
    rows = soccer_session.query(
        "SELECT text FROM twitter WHERE text contains 'soccer' LIMIT 4;"
    ).all()
    assert len(rows) == 4


def test_close_releases_connection(session_factory):
    # A small batch keeps the scan from draining the whole (finite,
    # API-filtered) stream on the first pull — the connection must stay
    # open while results remain, and close() must release it.
    session = session_factory("soccer", config=EngineConfig(batch_size=16))
    api = session.api
    handle = session.query(
        "SELECT text FROM twitter WHERE text contains 'soccer';"
    )
    handle.fetch(1)
    assert api.open_connections == 1
    handle.close()
    assert api.open_connections == 0
    from repro.errors import ExecutionError

    with pytest.raises(ExecutionError):
        iter(handle)


def test_limit_releases_connection(soccer_session):
    """Draining a LIMIT-bounded query frees the API connection slot even
    though the underlying stream was cut short (regression: reference
    cycles used to defer the release to gc)."""
    for _ in range(6):  # more than the connection limit
        soccer_session.query(
            "SELECT text FROM twitter WHERE text contains 'soccer' LIMIT 2;"
        ).all()
    assert soccer_session.api.open_connections == 0


def test_sentiment_udf_labels(soccer_session):
    rows = soccer_session.query(
        "SELECT sentiment(text) AS s, text FROM twitter "
        "WHERE text contains 'goal' LIMIT 50;"
    ).all()
    labels = {row["s"] for row in rows}
    assert labels <= {-1, 0, 1}
    assert len(labels) >= 2


def test_geocoding_udfs(soccer_session):
    rows = soccer_session.query(
        "SELECT latitude(loc) AS lat, longitude(loc) AS lon, loc "
        "FROM twitter WHERE text contains 'soccer' LIMIT 40;"
    ).all()
    resolved = [r for r in rows if r["lat"] is not None]
    assert resolved
    for row in resolved:
        assert -90 <= row["lat"] <= 90
        assert -180 <= row["lon"] <= 180


def test_windowed_count(soccer_session):
    rows = soccer_session.query(
        "SELECT COUNT(*) AS n FROM twitter WHERE text contains 'soccer' "
        "WINDOW 10 minutes;"
    ).all()
    assert rows
    assert all(row["n"] >= 1 for row in rows)
    assert all(
        row["window_end"] - row["window_start"] == 600.0 for row in rows
    )


def test_into_table_captures_rows(soccer_session):
    soccer_session.query(
        "SELECT COUNT(*) AS n FROM twitter WHERE text contains 'tevez' "
        "WINDOW 30 minutes INTO tevez_counts;"
    ).all()
    table = soccer_session.table("tevez_counts")
    assert len(table) > 0
    assert all("n" in row for row in table)


def test_custom_udf(soccer_session):
    soccer_session.register_udf("exclaim", lambda _ctx, s: f"{s}!")
    rows = soccer_session.query(
        "SELECT exclaim(screen_name) AS shouted FROM twitter "
        "WHERE text contains 'soccer' LIMIT 2;"
    ).all()
    assert all(row["shouted"].endswith("!") for row in rows)


def test_custom_stateful_udf(soccer_session):
    class Counter:
        def __init__(self):
            self.n = 0

        def __call__(self, _ctx):
            self.n += 1
            return self.n

    soccer_session.register_udf("tick", Counter, stateful=True)
    rows = soccer_session.query(
        "SELECT tick() AS n FROM twitter WHERE text contains 'soccer' LIMIT 5;"
    ).all()
    assert [row["n"] for row in rows] == [1, 2, 3, 4, 5]


def test_confidence_policy_query(session_factory):
    config = EngineConfig(
        confidence_policy=ConfidencePolicy(
            ci_halfwidth=0.2, max_age_seconds=1800.0
        )
    )
    session = session_factory("soccer", config=config)
    rows = session.query(
        "SELECT AVG(sentiment(text)) AS s FROM twitter "
        "WHERE text contains 'soccer' GROUP BY lang;"
    ).all()
    assert rows
    assert {"confidence", "age", "eos"} >= {row["emit_reason"] for row in rows}


def test_confidence_policy_rejects_non_avg(session_factory):
    from repro.errors import PlanError

    config = EngineConfig(confidence_policy=ConfidencePolicy(ci_halfwidth=0.2))
    session = session_factory("soccer", config=config)
    with pytest.raises(PlanError):
        session.query(
            "SELECT COUNT(*) FROM twitter WHERE text contains 'x' GROUP BY lang;"
        )


def test_latency_modes_agree_on_results(session_factory):
    sql = (
        "SELECT latitude(loc) AS lat FROM twitter "
        "WHERE text contains 'tevez' LIMIT 30;"
    )
    results = {}
    for mode in ("blocking", "cached", "batched", "async"):
        config = EngineConfig(
            latency_mode=mode,
            geocode_latency=LatencyModel(0.3, sigma=0.0),
        )
        session = session_factory("soccer", config=config)
        results[mode] = [row["lat"] for row in session.query(sql).all()]
    assert results["blocking"] == results["cached"] == results["batched"] == results["async"]


def test_cached_mode_far_cheaper_than_blocking(session_factory):
    sql = (
        "SELECT latitude(loc) AS lat FROM twitter "
        "WHERE text contains 'soccer' LIMIT 200;"
    )
    times = {}
    for mode in ("blocking", "cached"):
        config = EngineConfig(
            latency_mode=mode, geocode_latency=LatencyModel(0.3, sigma=0.0)
        )
        session = session_factory("soccer", config=config)
        session.query(sql).all()
        times[mode] = session.geocode_managed.stats.stall_seconds
    assert times["cached"] < times["blocking"] / 2


def test_for_scenarios_requires_one():
    with pytest.raises(ValueError):
        TweeQL.for_scenarios()


def test_stats_track_rows(soccer_session):
    handle = soccer_session.query(
        "SELECT text FROM twitter WHERE text contains 'tevez' AND followers > 0 LIMIT 10;"
    )
    handle.all()
    stats = handle.stats
    assert stats.rows_scanned >= 10
    assert stats.rows_emitted == 10
    assert stats.predicate_evaluations >= 10
