"""extract() and place_name() UDFs."""

import pytest

from repro.clock import VirtualClock
from repro.engine.functions import default_registry
from repro.engine.types import EvalContext


@pytest.fixture()
def ctx():
    return EvalContext(clock=VirtualClock())


def call(name, ctx, *args):
    return default_registry().lookup(name).impl(ctx, *args)


def test_extract_group_one_default(ctx):
    assert call("extract", ctx, "magnitude 6.3 quake", r"magnitude (\d+\.\d+)") == "6.3"


def test_extract_group_zero_is_whole_match(ctx):
    assert call("extract", ctx, "now 3-0 up", r"\d+-\d+", 0) == "3-0"


def test_extract_no_match_is_null(ctx):
    assert call("extract", ctx, "no numbers here", r"(\d+)") is None


def test_extract_case_insensitive(ctx):
    assert call("extract", ctx, "GOAL by Tevez", r"goal by (\w+)") == "Tevez"


def test_extract_invalid_regex_is_null(ctx):
    assert call("extract", ctx, "text", "[") is None


def test_extract_group_out_of_range_is_null(ctx):
    assert call("extract", ctx, "abc", r"(a)", 2) is None


def test_extract_null_propagation(ctx):
    assert call("extract", ctx, None, r"(a)") is None
    assert call("extract", ctx, "a", None) is None


def test_extract_pattern_cache_shared_in_query(ctx):
    call("extract", ctx, "a1", r"(\d)")
    assert "__extract_patterns__" in ctx.state
    assert len(ctx.state["__extract_patterns__"]) == 1
    call("extract", ctx, "b2", r"(\d)")
    assert len(ctx.state["__extract_patterns__"]) == 1


def test_place_name_nearest_city(ctx):
    assert call("place_name", ctx, 35.68, 139.69) == "Tokyo"
    assert call("place_name", ctx, 42.36, -71.06) == "Boston"


def test_place_name_null(ctx):
    assert call("place_name", ctx, None, 1.0) is None


def test_extract_in_sql_query(soccer_session):
    """End to end: pull the score out of goal tweets with a regex."""
    rows = soccer_session.query(
        "SELECT extract(text, '(\\d+-\\d+)') AS score, text FROM twitter "
        "WHERE text contains 'tevez' AND extract(text, '(\\d+-\\d+)') IS NOT NULL "
        "LIMIT 10;"
    ).all()
    assert rows
    for row in rows:
        assert row["score"] in row["text"]
        assert "-" in row["score"]


def test_place_name_in_sql_query(soccer_session):
    rows = soccer_session.query(
        "SELECT place_name(geo_lat, geo_lon) AS city FROM twitter "
        "WHERE text contains 'soccer' AND geo_lat IS NOT NULL LIMIT 10;"
    ).all()
    assert rows
    assert all(isinstance(row["city"], str) for row in rows)