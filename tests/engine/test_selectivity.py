"""API filter choice under uncertain selectivities."""

import pytest

from repro.engine.selectivity import (
    FilterCandidate,
    choose_api_filter,
    estimate_selectivities,
)
from repro.geo.bbox import named_box
from repro.twitter.stream import Firehose, StreamingAPI


@pytest.fixture(scope="module")
def api(soccer, chatter):
    return StreamingAPI(Firehose.from_scenarios(soccer, chatter), delivery_ratio=1.0)


def track_candidate(*keywords):
    kw = tuple(keywords)
    return FilterCandidate(
        kind="track",
        description=f"track({','.join(kw)})",
        api_kwargs={"track": kw},
        matches=lambda t, kw=kw: t.matches_any_keyword(kw),
    )


def bbox_candidate(name):
    box = named_box(name)
    return FilterCandidate(
        kind="locations",
        description=f"locations({name})",
        api_kwargs={"locations": (box,)},
        matches=lambda t, box=box: box.contains_point(t.geo),
    )


def test_estimates_reflect_reality(api):
    rare = track_candidate("tevez")
    common = track_candidate("soccer", "football", "manchester", "liverpool")
    estimates = estimate_selectivities(api, [rare, common], sample_rate=0.2)
    by_desc = {e.candidate.description: e.selectivity for e in estimates}
    assert by_desc[rare.description] < by_desc[common.description]


def test_chooses_lowest_selectivity(api):
    rare = track_candidate("tevez")
    common = track_candidate("soccer", "football", "manchester", "liverpool")
    choice = choose_api_filter(api, [common, rare], sample_rate=0.2)
    assert choice.chosen is rare


def test_single_candidate_skips_sampling(api):
    only = track_candidate("anything")
    choice = choose_api_filter(api, [only])
    assert choice.chosen is only
    assert choice.sample_size == 0


def test_keyword_vs_location(api):
    keyword = track_candidate("tevez")
    location = bbox_candidate("nyc")
    choice = choose_api_filter(api, [keyword, location], sample_rate=0.3)
    # Both are rare; whichever wins must genuinely be the rarer estimate.
    estimates = {e.candidate.kind: e.selectivity for e in choice.estimates}
    chosen_selectivity = min(estimates.values())
    winner = next(
        e for e in choice.estimates if e.candidate is choice.chosen
    )
    assert winner.selectivity == chosen_selectivity


def test_laplace_smoothing_avoids_zero():
    from repro.engine.selectivity import SelectivityEstimate

    estimate = SelectivityEstimate(
        candidate=track_candidate("x"), sample_size=100, matched=0
    )
    assert estimate.selectivity > 0.0


def test_explain_marks_chosen(api):
    choice = choose_api_filter(
        api,
        [track_candidate("tevez"), track_candidate("soccer")],
        sample_rate=0.2,
    )
    text = choice.explain()
    assert "->" in text
    assert "selectivity" in text


def test_empty_candidates_rejected(api):
    with pytest.raises(ValueError):
        choose_api_filter(api, [])
