"""Aggregate accumulators."""

import math

import pytest

from repro.engine.aggregates import (
    AvgAggregate,
    CountAggregate,
    make_aggregate,
)
from repro.errors import PlanError


def test_count_star_counts_rows():
    agg = make_aggregate("count", distinct=False, count_rows=True)
    assert not agg.skip_nulls
    for _ in range(5):
        agg.add(1)
    assert agg.result() == 5


def test_count_expr_skips_nulls_by_contract():
    agg = make_aggregate("count", distinct=False, count_rows=False)
    assert agg.skip_nulls  # the operator filters NULLs before add()


def test_count_distinct():
    agg = make_aggregate("count", distinct=True, count_rows=False)
    for value in (1, 2, 2, 3, 3, 3):
        agg.add(value)
    assert agg.result() == 3


def test_distinct_only_for_count():
    with pytest.raises(PlanError):
        make_aggregate("sum", distinct=True, count_rows=False)


def test_sum():
    agg = make_aggregate("sum", distinct=False, count_rows=False)
    for value in (1, 2, 3.5):
        agg.add(value)
    assert agg.result() == 6.5


def test_sum_empty_is_null():
    assert make_aggregate("sum", False, False).result() is None


def test_min_max():
    low = make_aggregate("min", False, False)
    high = make_aggregate("max", False, False)
    for value in (3, 1, 2):
        low.add(value)
        high.add(value)
    assert low.result() == 1
    assert high.result() == 3


def test_avg_welford_matches_direct():
    agg = AvgAggregate()
    values = [1.0, 2.0, 4.0, 8.0, 16.0]
    for value in values:
        agg.add(value)
    assert agg.result() == pytest.approx(sum(values) / len(values))
    mean = sum(values) / len(values)
    direct_var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    assert agg.variance == pytest.approx(direct_var)


def test_avg_confidence_interval_shrinks_with_n():
    agg = AvgAggregate()
    import random

    rng = random.Random(1)
    agg.add(rng.random())
    agg.add(rng.random())
    wide = agg.confidence_interval()
    for _ in range(500):
        agg.add(rng.random())
    narrow = agg.confidence_interval()
    assert narrow < wide


def test_avg_ci_none_below_two():
    agg = AvgAggregate()
    assert agg.confidence_interval() is None
    agg.add(1.0)
    assert agg.confidence_interval() is None


def test_stddev():
    agg = make_aggregate("stddev", False, False)
    for value in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
        agg.add(value)
    assert agg.result() == pytest.approx(math.sqrt(32 / 7))


def test_first_last():
    first = make_aggregate("first", False, False)
    last = make_aggregate("last", False, False)
    for value in ("a", "b", "c"):
        first.add(value)
        last.add(value)
    assert first.result() == "a"
    assert last.result() == "c"


def test_unknown_aggregate_raises():
    with pytest.raises(PlanError):
        make_aggregate("median", False, False)


def test_count_aggregate_direct():
    agg = CountAggregate(count_rows=False)
    agg.add("anything")
    agg.add("else")
    assert agg.result() == 2
