"""INTO STREAM: derived streams and query composition."""

import pytest

from repro.errors import PlanError
from repro.sql import parse


def test_parse_into_stream():
    stmt = parse("SELECT COUNT(*) AS n FROM twitter WINDOW 1 minutes "
                 "INTO STREAM per_minute;")
    assert stmt.into_stream == "per_minute"
    assert stmt.into is None


def test_parse_into_table_still_works():
    stmt = parse("SELECT text FROM twitter INTO results;")
    assert stmt.into == "results"
    assert stmt.into_stream is None


def test_into_stream_round_trips():
    stmt = parse("SELECT text FROM twitter INTO STREAM s;")
    assert parse(stmt.to_sql()) == stmt


def test_derived_stream_queryable(soccer_session):
    soccer_session.query(
        "SELECT COUNT(*) AS n FROM twitter WHERE text contains 'soccer' "
        "WINDOW 10 minutes INTO STREAM counts;"
    )
    rows = soccer_session.query("SELECT n FROM counts;").all()
    assert rows
    assert all(row["n"] >= 1 for row in rows)


def test_derived_stream_rereads_fresh(soccer_session):
    soccer_session.query(
        "SELECT COUNT(*) AS n FROM twitter WHERE text contains 'tevez' "
        "WINDOW 30 minutes INTO STREAM tevez_counts;"
    )
    first = soccer_session.query("SELECT n FROM tevez_counts;").all()
    second = soccer_session.query("SELECT n FROM tevez_counts;").all()
    # Each read re-runs the upstream pipeline on a fresh connection; the
    # API's ~2% delivery loss makes counts near-identical, not identical
    # (as with real reconnects).
    assert len(first) == len(second)
    for a, b in zip(first, second):
        assert abs(a["n"] - b["n"]) <= max(5, 0.1 * a["n"])


def test_derived_stream_schema_includes_window_columns(soccer_session):
    soccer_session.query(
        "SELECT COUNT(*) AS n FROM twitter WHERE text contains 'soccer' "
        "WINDOW 10 minutes INTO STREAM windows;"
    )
    rows = soccer_session.query(
        "SELECT window_start, n FROM windows WHERE n > 0;"
    ).all()
    assert rows
    assert all("window_start" in row for row in rows)


def test_meandev_over_derived_stream_flags_goals(soccer_session, soccer):
    """The paper's composition: peak detection as a stateful TweeQL UDF
    over the aggregate tweet count of an upstream query."""
    soccer_session.query(
        "SELECT COUNT(*) AS n FROM twitter WHERE text contains 'soccer' "
        "OR text contains 'manchester' OR text contains 'liverpool' "
        "WINDOW 1 minutes INTO STREAM volume;"
    )
    rows = soccer_session.query(
        "SELECT meandev(n) AS score, n, window_start FROM volume;"
    ).all()
    spikes = [r for r in rows if r["score"] is not None and r["score"] > 3.0]
    assert spikes
    goal_times = [e.time for e in soccer.truth.events]
    covered = sum(
        1 for t in goal_times
        if any(abs(s["window_start"] - t) <= 120 for s in spikes)
    )
    assert covered == len(goal_times)


def test_derived_can_feed_aggregation(soccer_session):
    soccer_session.query(
        "SELECT COUNT(*) AS n FROM twitter WHERE text contains 'soccer' "
        "WINDOW 1 minutes INTO STREAM minute_counts;"
    )
    rows = soccer_session.query(
        "SELECT SUM(n) AS total, COUNT(*) AS windows FROM minute_counts "
        "WINDOW 1 hours;"
    ).all()
    assert rows
    assert all(row["total"] >= row["windows"] for row in rows)


def test_cannot_shadow_twitter_with_stream(soccer_session):
    with pytest.raises(PlanError):
        soccer_session.query(
            "SELECT text FROM twitter WHERE text contains 'a' "
            "INTO STREAM twitter;"
        )


def test_into_stream_handle_also_yields_rows(soccer_session):
    handle = soccer_session.query(
        "SELECT text FROM twitter WHERE text contains 'tevez' "
        "LIMIT 3 INTO STREAM tevez_stream;"
    )
    assert len(handle.all()) == 3
