"""Columnar layout and shard backends are pure performance knobs.

The acceptance sweep: every point of {row, columnar} × batch {1, 7, 256}
× workers {1, 4} × backend {thread, process} must be row-for-row — and
stats-for-stats — identical on the paper's demo queries and on the
static query shapes. Plus the observability contract for the process
backend (per-shard stats and trace lanes ship back to the parent) and
the planner's backend-fallback diagnostics.

The process points run with ``clamp_workers=False`` so the fabric is
exercised even on single-core CI hosts (where the planner would
otherwise, correctly, fall back to threads).
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro import EngineConfig, TweeQL
from repro.twitter.users import UserPopulation
from repro.twitter.workloads import soccer_match_scenario

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="process backend requires the fork start method"
)

BASE_TS = 1_307_000_000.0
SCHEMA = ("tweet_id", "text", "loc", "created_at", "lang", "followers")

STATIC_ROWS = [
    {
        "tweet_id": 1000 + i,
        "created_at": BASE_TS + 13.0 * i,
        "text": ("goal! " if i % 3 else "nothing here ") + f"tweet {i}",
        "lang": ("en", "es", "pt")[i % 3],
        "followers": (37 * i) % 2000 if i % 7 else None,
        "loc": ("London", "NYC", None)[i % 3],
    }
    for i in range(200)
]

#: Query shapes that exercise the vectorized filter, columnar projection,
#: and columnar group-key paths. LIMIT shapes stop the scan early, so
#: only output rows are comparable there (as in test_parallel).
SHAPES = {
    "filter_project": (
        "SELECT text, followers FROM s "
        "WHERE text CONTAINS 'goal' AND followers > 500;",
        "full",
    ),
    "udf_project": (
        "SELECT lower(text) AS t, length(text) AS n FROM s "
        "WHERE followers >= 0 AND lang IN ('en', 'pt');",
        "full",
    ),
    "group_window": (
        "SELECT COUNT(*) AS n, AVG(followers) AS f, lang FROM s "
        "GROUP BY lang WINDOW 120 seconds;",
        "full",
    ),
    "limit": (
        "SELECT text FROM s WHERE followers > 200 LIMIT 9;",
        "limit",
    ),
}

#: Stats that must match the serial row-engine exactly. windows_closed
#: and batches vary structurally with sharding/batch size (pre-existing).
EXACT_STATS = (
    "rows_after_filter",
    "predicate_evaluations",
    "rows_emitted",
    "groups_emitted",
)


def make_session(workers=1, batch_size=256, columnar=True, backend="thread"):
    config = EngineConfig(
        workers=workers,
        batch_size=batch_size,
        columnar=columnar,
        shard_backend=backend,
        clamp_workers=False,
    )
    session = TweeQL(config=config)
    session.register_source(
        "s", lambda: iter([dict(r) for r in STATIC_ROWS]), SCHEMA
    )
    return session


def run(session, sql):
    handle = session.query(sql)
    rows = handle.all()
    stats = handle.stats.as_dict()
    handle.close()
    return rows, stats


BACKENDS = ["thread", pytest.param("process", marks=needs_fork)]


@pytest.mark.parametrize("shape", sorted(SHAPES))
@pytest.mark.parametrize("batch", [1, 7, 256])
@pytest.mark.parametrize("workers", [1, 4])
@pytest.mark.parametrize("backend", BACKENDS)
def test_columnar_matches_row_engine(shape, batch, workers, backend):
    sql, stats_mode = SHAPES[shape]
    base_rows, base_stats = run(
        make_session(workers=1, batch_size=1, columnar=False), sql
    )
    rows, stats = run(
        make_session(
            workers=workers, batch_size=batch, columnar=True, backend=backend
        ),
        sql,
    )
    assert rows == base_rows, (shape, batch, workers, backend)
    keys = EXACT_STATS if stats_mode == "full" else ("rows_emitted",)
    if stats_mode == "full" and workers == 1:
        keys = keys + ("rows_scanned",)
    for key in keys:
        assert stats[key] == base_stats[key], (key, shape, batch, workers)


@pytest.mark.parametrize("backend", BACKENDS)
def test_paper_demo_queries_identical_across_backends(news_week, backend):
    from tests.integration.test_paper_queries import QUERY_2, QUERY_3

    for sql, limit in ((QUERY_2, 1500), (QUERY_3, None)):
        def run_config(workers, batch, columnar, backend="thread"):
            session = TweeQL.for_scenarios(
                news_week,
                seed=11,
                config=EngineConfig(
                    workers=workers,
                    batch_size=batch,
                    columnar=columnar,
                    shard_backend=backend,
                    clamp_workers=False,
                ),
            )
            handle = session.query(sql)
            rows = handle.all(limit=limit)
            handle.close()
            return rows

        baseline = run_config(workers=1, batch=1, columnar=False)
        assert run_config(workers=1, batch=256, columnar=True) == baseline
        assert (
            run_config(workers=4, batch=256, columnar=True, backend=backend)
            == baseline
        )


# ---------------------------------------------------------------------------
# Process-backend observability: stats and trace lanes survive the fork
# ---------------------------------------------------------------------------


@needs_fork
def test_process_backend_shard_stats_reach_parent():
    sql = "SELECT text FROM s WHERE text CONTAINS 'goal';"
    thread_rows, thread_stats = run(
        make_session(workers=4, backend="thread"), sql
    )
    session = make_session(workers=4, backend="process")
    handle = session.query(sql)
    rows = handle.all()
    handle.close()
    assert rows == thread_rows
    assert handle.stats.as_dict() == thread_stats
    # Exchange stage first, then one entry per worker — same surface as
    # the thread backend, filled from the children's result payloads.
    assert len(handle.shard_stats) == 5
    assert handle.shard_stats[0].rows_scanned == len(STATIC_ROWS)
    worker_emitted = sum(s.rows_emitted for s in handle.shard_stats[1:])
    assert worker_emitted == len(rows) == handle.stats.rows_emitted


@needs_fork
def test_process_backend_explain_analyze_lane_census_matches_thread():
    sql = "SELECT text, followers FROM s WHERE followers > 500;"

    def census(backend):
        config = EngineConfig(
            workers=2,
            columnar=True,
            shard_backend=backend,
            clamp_workers=False,
            tracing=True,
        )
        session = TweeQL(config=config)
        session.register_source(
            "s", lambda: iter([dict(r) for r in STATIC_ROWS]), SCHEMA
        )
        handle = session.query(sql)
        rows = handle.all()
        analyze = handle.explain(analyze=True)
        tracer = handle.tracer
        probes = {
            (p.lane, p.name): (p.rows, p.batches) for p in tracer.probes
        }
        lanes = sorted({s.lane for s in tracer.spans})
        handle.close()
        return rows, probes, lanes, analyze

    t_rows, t_probes, t_lanes, t_analyze = census("thread")
    p_rows, p_probes, p_lanes, p_analyze = census("process")
    assert p_rows == t_rows
    # Identical probe census: same operators in the same lanes seeing the
    # same rows/batches. (Timings differ: the forked child's virtual
    # clock is frozen, so its spans have zero duration.)
    assert p_probes == t_probes
    assert p_lanes == t_lanes
    for lane in ("worker-0", "worker-1", "exchange", "merge"):
        assert lane in p_analyze


def test_sharded_service_stats_sum_of_stage_mirrors():
    """handle.service_stats on sharded plans must equal the sum of the
    per-stage mirrors — one attribution per call, none lost."""
    pop = UserPopulation(size=200, seed=7)
    scen = soccer_match_scenario(seed=7, population=pop)
    session = TweeQL.for_scenarios(
        scen, config=EngineConfig(workers=4)
    )
    handle = session.query(
        "SELECT latitude(loc) AS lat, text FROM twitter "
        "WHERE text CONTAINS 'goal' LIMIT 50;"
    )
    rows = handle.all(limit=50)
    handle.close()
    assert rows
    stats = handle.service_stats
    assert "geocode" in stats
    # Stage mirrors key by the underlying service name ("geocoder").
    mirror_total = sum(
        stage["geocoder"].calls
        for stage in handle.shard_service_stats
        if "geocoder" in stage
    )
    assert stats["geocode"]["calls"] == mirror_total
    assert mirror_total > 0


# ---------------------------------------------------------------------------
# Backend resolution diagnostics
# ---------------------------------------------------------------------------


def _explain(sql, **kw):
    config = EngineConfig(**kw)
    session = TweeQL(config=config)
    session.register_source(
        "s", lambda: iter([dict(r) for r in STATIC_ROWS]), SCHEMA
    )
    return session.explain(sql)


@needs_fork
def test_process_backend_clamps_workers_to_cores():
    cores = os.cpu_count() or 1
    text = _explain(
        "SELECT text FROM s WHERE followers > 10;",
        workers=cores + 3,
        shard_backend="process",
    )
    if cores >= 2:
        assert f"workers clamped {cores + 3} -> {cores}" in text
        assert f"over {cores} shards" in text
    else:
        # One core: forking cannot win; the planner says so and uses
        # threads at the requested logical shard count.
        assert "process backend unavailable" in text
        assert "[thread backend]" in text


def test_thread_workers_are_never_clamped():
    cores = os.cpu_count() or 1
    text = _explain(
        "SELECT text FROM s WHERE followers > 10;",
        workers=cores + 3,
        shard_backend="thread",
    )
    assert f"over {cores + 3} shards" in text
    assert "clamped" not in text


def test_process_request_on_serial_fallback_is_explained():
    text = _explain(
        "SELECT meandev(followers) AS d FROM s;",
        workers=4,
        shard_backend="process",
    )
    assert "Parallel: serial fallback" in text
    assert "process backend requested but the plan runs serially" in text


@needs_fork
def test_web_service_plans_fall_back_to_thread_backend():
    pop = UserPopulation(size=50, seed=7)
    scen = soccer_match_scenario(seed=7, population=pop)
    session = TweeQL.for_scenarios(
        scen,
        config=EngineConfig(
            workers=2, shard_backend="process", clamp_workers=False
        ),
    )
    text = session.explain(
        "SELECT latitude(loc) AS lat FROM twitter WHERE text CONTAINS 'goal';"
    )
    assert "process backend unavailable" in text
    assert "session clock" in text
    assert "[thread backend]" in text


def test_unknown_backend_is_a_plan_error():
    from repro.errors import PlanError

    with pytest.raises(PlanError, match="shard_backend"):
        _explain(
            "SELECT text FROM s WHERE followers > 10;",
            workers=2,
            shard_backend="rocket",
        )


def test_columnar_off_keeps_row_layout_in_explain():
    on = _explain("SELECT text FROM s WHERE followers > 10;", batch_size=256)
    off = _explain(
        "SELECT text FROM s WHERE followers > 10;",
        batch_size=256,
        columnar=False,
    )
    assert "rows/batch, columnar" in on
    assert "columnar" not in off
    assert "[vectorized 1/1]" in on
    assert "[vectorized" not in off


def test_row_at_a_time_plans_stay_row_wise():
    text = _explain("SELECT text FROM s WHERE followers > 10;", batch_size=1)
    assert "columnar" not in text


# ---------------------------------------------------------------------------
# The fidelity scenarios: election / cascade / bot-flood across the grid
# ---------------------------------------------------------------------------

#: Scenario fixture → query shapes exercising the vectorized filter and
#: the columnar group-key path on each new generator's traffic.
NEW_SCENARIO_SQL = {
    "election_small": (
        "SELECT COUNT(*) AS n, first(text) AS example FROM twitter "
        "WHERE text CONTAINS 'ballot' WINDOW 10 minutes;"
    ),
    "cascade_small": (
        "SELECT COUNT(*) AS n, lang FROM twitter "
        "WHERE text CONTAINS 'wildfire' GROUP BY lang WINDOW 15 minutes;"
    ),
    "botflood_small": (
        "SELECT text, followers FROM twitter "
        "WHERE text CONTAINS 'giveaway' AND followers > 200;"
    ),
}

_new_scenario_baselines: dict[str, list] = {}


def _scenario_rows(scenario, sql, **config_kwargs):
    config = EngineConfig(clamp_workers=False, **config_kwargs)
    session = TweeQL.for_scenarios(scenario, seed=11, config=config)
    handle = session.query(sql)
    rows = [
        {k: v for k, v in row.items() if not k.startswith("__")}
        for row in handle
    ]
    handle.close()
    return rows


@pytest.mark.parametrize("batch,workers", [(1, 1), (1, 4), (256, 1), (256, 4)])
@pytest.mark.parametrize("fixture_name", sorted(NEW_SCENARIO_SQL))
def test_new_scenarios_columnar_equivalence(
    request, fixture_name, batch, workers
):
    """Batch size, worker count, and layout are invisible in the output."""
    scenario = request.getfixturevalue(fixture_name)
    sql = NEW_SCENARIO_SQL[fixture_name]
    if fixture_name not in _new_scenario_baselines:
        _new_scenario_baselines[fixture_name] = _scenario_rows(
            scenario, sql, workers=1, batch_size=1, columnar=False
        )
    baseline = _new_scenario_baselines[fixture_name]
    assert baseline, f"{fixture_name} baseline produced no rows"
    rows = _scenario_rows(
        scenario, sql, workers=workers, batch_size=batch, columnar=True
    )
    assert rows == baseline, (fixture_name, batch, workers)
