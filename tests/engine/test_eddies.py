"""Eddy-style adaptive predicate reordering."""

import pytest

from repro.clock import VirtualClock
from repro.engine.eddies import AdaptivePredicate, EddyOperator, StaticConjunction
from repro.engine.types import EvalContext, batch_rows, iter_rows


@pytest.fixture()
def ctx():
    return EvalContext(clock=VirtualClock(start=0.0))


def make_rows(n, phase_of):
    """Rows whose 'phase' field drives drifting selectivities."""
    return [
        {"created_at": float(i), "i": i, "phase": phase_of(i)} for i in range(n)
    ]


def batched(rows, size=32):
    return batch_rows(rows, size)


def test_conjunction_semantics_match_static(ctx):
    preds = lambda: [
        AdaptivePredicate("even", lambda r, _c: r["i"] % 2 == 0),
        AdaptivePredicate("small", lambda r, _c: r["i"] < 250),
    ]
    eddy_out = [
        r["i"]
        for r in iter_rows(
            EddyOperator(batched(make_rows(500, lambda i: 0)), preds(), ctx)
        )
    ]
    ctx2 = EvalContext(clock=VirtualClock(start=0.0))
    static_out = [
        r["i"]
        for r in iter_rows(
            StaticConjunction(batched(make_rows(500, lambda i: 0)), preds(), ctx2)
        )
    ]
    assert eddy_out == static_out


def test_pass_rate_estimates_converge(ctx):
    predicate = AdaptivePredicate(
        "tenth", lambda r, _c: r["i"] % 10 == 0, decay=0.98
    )
    for row in make_rows(2000, lambda i: 0):
        predicate.test(row, ctx)
    assert predicate.pass_rate == pytest.approx(0.1, abs=0.06)
    assert predicate.evaluations == 2000
    assert predicate.passes == 200


def test_eddy_moves_selective_predicate_first(ctx):
    """Phase 1: predicate A filters everything; phase 2: B does. The eddy's
    order must flip between phases."""
    n = 6000
    rows = make_rows(n, lambda i: 0 if i < n // 2 else 1)
    pred_a = AdaptivePredicate(
        "a", lambda r, _c: r["phase"] == 1, decay=0.99
    )  # fails in phase 0, passes in phase 1
    pred_b = AdaptivePredicate(
        "b", lambda r, _c: r["phase"] == 0, decay=0.99
    )  # passes in phase 0, fails in phase 1
    eddy = EddyOperator(batched(rows), [pred_b, pred_a], ctx, resort_every=32)
    for _row in iter_rows(eddy):
        pass  # nothing passes both predicates; loop drains
    # After draining, phase 2 dominated recent history: 'b' fails everything
    # now, so 'b' must have moved to the front.
    assert eddy.current_order[0] == "b"


def test_eddy_skips_remaining_predicates_after_failure(ctx):
    calls = {"expensive": 0}

    def expensive(r, _c):
        calls["expensive"] += 1
        return True

    cheap_selective = AdaptivePredicate("cheap", lambda r, _c: False)
    costly = AdaptivePredicate("costly", expensive)
    rows = make_rows(1000, lambda i: 0)
    list(EddyOperator(batched(rows), [cheap_selective, costly], ctx,
                      resort_every=16))
    # Once the eddy learns 'cheap' kills everything, 'costly' runs rarely.
    assert calls["expensive"] < 200


def test_eddy_beats_bad_static_order_on_drift(ctx):
    """Total predicate evaluations: adaptive ≤ the bad static order."""
    n = 4000

    def build_preds():
        return [
            AdaptivePredicate("first_half", lambda r, _c: r["phase"] == 0, decay=0.99),
            AdaptivePredicate("never", lambda r, _c: False, decay=0.99),
        ]

    rows = make_rows(n, lambda i: 0 if i < n // 2 else 1)
    eddy_ctx = EvalContext(clock=VirtualClock(start=0.0))
    list(EddyOperator(batched(rows), build_preds(), eddy_ctx, resort_every=32))
    static_ctx = EvalContext(clock=VirtualClock(start=0.0))
    list(StaticConjunction(batched(rows), build_preds(), static_ctx))
    assert (
        eddy_ctx.stats.predicate_evaluations
        <= static_ctx.stats.predicate_evaluations
    )


def test_resort_every_validated(ctx):
    with pytest.raises(ValueError):
        EddyOperator([], [], ctx, resort_every=0)
