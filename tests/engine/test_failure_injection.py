"""Robustness under transient service failures.

The paper's web-service UDFs call real remote services, which fail. The
engine must degrade (NULLs) rather than die, and negative caching must not
pin a transient failure forever when a TTL is set.
"""

from repro import EngineConfig
from repro.geo.service import LatencyModel


def test_queries_survive_service_failures(session_factory):
    config = EngineConfig(
        latency_mode="cached",
        service_failure_rate=0.3,
        geocode_latency=LatencyModel(0.05, sigma=0.0),
    )
    session = session_factory("soccer", config=config)
    rows = session.query(
        "SELECT latitude(loc) AS lat, loc FROM twitter "
        "WHERE text contains 'soccer' LIMIT 150;"
    ).all()
    assert len(rows) == 150
    succeeded = [r for r in rows if r["lat"] is not None]
    assert succeeded  # most calls still succeed
    assert session.geocode_service.stats.failures > 0


def test_failures_are_negative_cached(session_factory):
    config = EngineConfig(
        latency_mode="cached",
        service_failure_rate=0.5,
        geocode_latency=LatencyModel(0.05, sigma=0.0),
    )
    session = session_factory("soccer", config=config)
    managed = session.geocode_managed
    first = managed("Boston")
    requests_after_first = session.geocode_service.stats.requests
    second = managed("Boston")
    # Whatever the first call produced (value or failure), the second is a
    # cache hit — no extra request.
    assert session.geocode_service.stats.requests == requests_after_first
    assert second == first


def test_ttl_lets_failures_age_out():
    """With a cache TTL, a cached failure is retried after expiry."""
    from repro.clock import VirtualClock
    from repro.engine.latency import ManagedCall
    from repro.geo.service import SimulatedWebService

    clock = VirtualClock(start=0.0)
    attempts = {"n": 0}

    def flaky(key):
        attempts["n"] += 1
        if attempts["n"] == 1:
            from repro.errors import ServiceError

            raise ServiceError("first call fails")
        return (1.0, 2.0)

    service = SimulatedWebService(
        "flaky", flaky, clock=clock, latency=LatencyModel(0.1, sigma=0.0)
    )
    managed = ManagedCall(service, mode="cached", cache_ttl=60.0)
    assert managed("x") is None          # failure, negative-cached
    assert managed("x") is None          # still cached
    assert attempts["n"] == 1
    clock.advance(61.0)                   # TTL expires
    assert managed("x") == (1.0, 2.0)     # retried and healed
    assert attempts["n"] == 2


def test_async_mode_with_failures(session_factory):
    config = EngineConfig(
        latency_mode="async",
        service_failure_rate=0.25,
        geocode_latency=LatencyModel(0.05, sigma=0.0),
    )
    session = session_factory("soccer", config=config)
    rows = session.query(
        "SELECT latitude(loc) AS lat FROM twitter "
        "WHERE text contains 'soccer' LIMIT 120;"
    ).all()
    assert len(rows) == 120
    assert any(r["lat"] is not None for r in rows)
