"""Robustness under transient service failures.

The paper's web-service UDFs call real remote services, which fail. The
engine must degrade (NULLs) rather than die, and negative caching must not
pin a transient failure forever when a TTL is set.
"""

from repro import EngineConfig
from repro.geo.service import LatencyModel


def test_queries_survive_service_failures(session_factory):
    config = EngineConfig(
        latency_mode="cached",
        service_failure_rate=0.3,
        geocode_latency=LatencyModel(0.05, sigma=0.0),
    )
    session = session_factory("soccer", config=config)
    rows = session.query(
        "SELECT latitude(loc) AS lat, loc FROM twitter "
        "WHERE text contains 'soccer' LIMIT 150;"
    ).all()
    assert len(rows) == 150
    succeeded = [r for r in rows if r["lat"] is not None]
    assert succeeded  # most calls still succeed
    assert session.geocode_service.stats.failures > 0


def test_failures_are_negative_cached(session_factory):
    config = EngineConfig(
        latency_mode="cached",
        service_failure_rate=0.5,
        geocode_latency=LatencyModel(0.05, sigma=0.0),
    )
    session = session_factory("soccer", config=config)
    managed = session.geocode_managed
    first = managed("Boston")
    requests_after_first = session.geocode_service.stats.requests
    second = managed("Boston")
    # Whatever the first call produced (value or failure), the second is a
    # cache hit — no extra request.
    assert session.geocode_service.stats.requests == requests_after_first
    assert second == first


def test_ttl_lets_failures_age_out():
    """With a cache TTL, a cached failure is retried after expiry."""
    from repro.clock import VirtualClock
    from repro.engine.latency import ManagedCall
    from repro.geo.service import SimulatedWebService

    clock = VirtualClock(start=0.0)
    attempts = {"n": 0}

    def flaky(key):
        attempts["n"] += 1
        if attempts["n"] == 1:
            from repro.errors import ServiceError

            raise ServiceError("first call fails")
        return (1.0, 2.0)

    service = SimulatedWebService(
        "flaky", flaky, clock=clock, latency=LatencyModel(0.1, sigma=0.0)
    )
    managed = ManagedCall(service, mode="cached", cache_ttl=60.0)
    assert managed("x") is None          # failure, negative-cached
    assert managed("x") is None          # still cached
    assert attempts["n"] == 1
    clock.advance(61.0)                   # TTL expires
    assert managed("x") == (1.0, 2.0)     # retried and healed
    assert attempts["n"] == 2


def test_async_mode_with_failures(session_factory):
    config = EngineConfig(
        latency_mode="async",
        service_failure_rate=0.25,
        geocode_latency=LatencyModel(0.05, sigma=0.0),
    )
    session = session_factory("soccer", config=config)
    rows = session.query(
        "SELECT latitude(loc) AS lat FROM twitter "
        "WHERE text contains 'soccer' LIMIT 120;"
    ).all()
    assert len(rows) == 120
    assert any(r["lat"] is not None for r in rows)


def test_retried_success_overwrites_negative_cache_entry():
    """A key negative-cached by an earlier failure must serve the real
    value once a retried call lands it — the success wins over the stale
    NULL, whatever the TTL says."""
    from repro.clock import VirtualClock
    from repro.engine.latency import ManagedCall
    from repro.engine.resilience import (
        FaultPlan,
        ResilientService,
        RetryPolicy,
        ServiceFaultModel,
    )
    from repro.geo.service import SimulatedWebService

    clock = VirtualClock(start=0.0)
    plan = FaultPlan(
        seed=7,
        services={"svc": ServiceFaultModel(failure_rate=1.0, max_burst=2)},
    )
    service = SimulatedWebService(
        "svc",
        lambda key: (1.0, 2.0),
        clock=clock,
        latency=LatencyModel(0.1, sigma=0.0),
        fault_injector=plan.injector_for("svc"),
    )
    burst = plan.failing_attempts("svc", "x")
    assert burst >= 1

    # Without retries the burst exhausts the call: NULL is negative-cached
    # (long TTL — nowhere near expiring).
    no_retry = ManagedCall(
        ResilientService(service, RetryPolicy(max_retries=0)),
        mode="cached",
        cache_ttl=3600.0,
    )
    assert no_retry("x") is None
    assert no_retry.cache.contains("x")

    # A retried async launch on the same cache rides out the rest of the
    # burst and must overwrite the stale negative entry.
    retried = ManagedCall(
        ResilientService(
            service, RetryPolicy(max_retries=3, jitter=False)
        ),
        mode="async",
        cache_ttl=3600.0,
    )
    retried.prefetch(["x"])
    retried.cache.put("x", None)  # the stale NULL, as the first call left it
    retried.drain()
    assert retried("x") == (1.0, 2.0)


def test_late_async_failure_does_not_clobber_landed_value():
    """The mirror case: an async retry chain that finally gives up must
    not overwrite a real value the consumer already resolved."""
    from repro.clock import VirtualClock
    from repro.engine.latency import ManagedCall
    from repro.engine.resilience import ResilientService, RetryPolicy
    from repro.errors import ServiceError
    from repro.geo.service import SimulatedWebService

    clock = VirtualClock(start=0.0)
    calls = {"n": 0}

    def always_fails(key):
        calls["n"] += 1
        raise ServiceError("down")

    service = SimulatedWebService(
        "svc", always_fails, clock=clock, latency=LatencyModel(0.1, sigma=0.0)
    )
    managed = ManagedCall(
        ResilientService(service, RetryPolicy(max_retries=2, jitter=False)),
        mode="async",
    )
    managed.prefetch(["x"])
    managed.cache.put("x", (9.0, 9.0))  # consumer resolved it meanwhile
    managed.drain()  # the chain exhausts its budget and fails
    assert managed("x") == (9.0, 9.0)
