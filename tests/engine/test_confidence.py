"""Confidence-triggered group emission (the 'Uneven Aggregate Groups'
construct)."""

import random

import pytest

from repro.clock import VirtualClock
from repro.engine.confidence import (
    ConfidenceAggregateOperator,
    ConfidencePolicy,
    normal_halfwidth,
)
from repro.engine.types import EvalContext, batch_rows, iter_rows


@pytest.fixture()
def ctx():
    return EvalContext(clock=VirtualClock(start=0.0))


def stream(groups):
    """Interleave (time, group, value) tuples into rows."""
    return [
        {"created_at": t, "g": g, "v": v}
        for t, g, v in sorted(groups, key=lambda x: x[0])
    ]


def operator(rows, ctx, policy, batch_size=7):
    return iter_rows(ConfidenceAggregateOperator(
        batch_rows(rows, batch_size),
        group_evals=[lambda r, _c: r["g"]],
        value_eval=lambda r, _c: r["v"],
        output_items=[
            ("g", lambda r, _c: r["g"]),
            ("mean", lambda r, _c: r["__agg0"]),
        ],
        ctx=ctx,
        policy=policy,
    ))


def test_dense_group_emits_on_confidence(ctx):
    rng = random.Random(1)
    rows = stream(
        [(float(i), "tokyo", rng.gauss(0.5, 0.1)) for i in range(500)]
    )
    policy = ConfidencePolicy(ci_halfwidth=0.05, max_age_seconds=None)
    out = list(operator(rows, ctx, policy))
    confident = [r for r in out if r["emit_reason"] == "confidence"]
    assert confident
    first = confident[0]
    assert first["ci_halfwidth"] <= 0.05
    assert first["n"] >= policy.min_count
    assert first["mean"] == pytest.approx(0.5, abs=0.1)


def test_group_resets_after_emission(ctx):
    rng = random.Random(2)
    rows = stream(
        [(float(i), "tokyo", rng.gauss(0.0, 0.05)) for i in range(2000)]
    )
    policy = ConfidencePolicy(ci_halfwidth=0.02, max_age_seconds=None)
    out = list(operator(rows, ctx, policy))
    confident = [r for r in out if r["emit_reason"] == "confidence"]
    # High-rate group emits repeatedly, each time from a fresh sample.
    assert len(confident) > 3


def test_sparse_group_flushed_by_age(ctx):
    rows = stream(
        # Cape Town tweets trickle: far too few for the CI target.
        [(i * 400.0, "capetown", 0.4 + 0.2 * (i % 2)) for i in range(12)]
    )
    policy = ConfidencePolicy(
        ci_halfwidth=0.0001, max_age_seconds=1800.0, min_count=2
    )
    out = list(operator(rows, ctx, policy))
    aged = [r for r in out if r["emit_reason"] == "age"]
    assert aged
    assert aged[0]["n"] >= 2


def test_end_of_stream_flush(ctx):
    rows = stream([(1.0, "x", 1.0), (2.0, "x", 2.0)])
    policy = ConfidencePolicy(ci_halfwidth=0.001, max_age_seconds=None)
    out = list(operator(rows, ctx, policy))
    assert len(out) == 1
    assert out[0]["emit_reason"] == "eos"
    assert out[0]["mean"] == pytest.approx(1.5)


def test_null_values_skipped(ctx):
    rows = stream([(1.0, "x", None), (2.0, "x", 4.0)])
    policy = ConfidencePolicy(ci_halfwidth=0.001, max_age_seconds=None)
    out = list(operator(rows, ctx, policy))
    assert out[0]["n"] == 1
    assert out[0]["mean"] == 4.0


def test_confident_beats_fixed_window_on_freshness(ctx):
    """A dense group reaches the CI target long before a 3-hour window
    would close — the paper's argument for the construct."""
    rng = random.Random(3)
    rows = stream(
        [(float(i), "tokyo", rng.gauss(0.3, 0.1)) for i in range(5000)]
    )
    policy = ConfidencePolicy(ci_halfwidth=0.05, max_age_seconds=3 * 3600.0)
    out = list(operator(rows, ctx, policy))
    first = next(r for r in out if r["emit_reason"] == "confidence")
    emit_delay = first["created_at"] - first["group_started"]
    assert emit_delay < 3600.0  # much fresher than the fixed window


def test_policy_validation():
    with pytest.raises(ValueError):
        ConfidencePolicy(ci_halfwidth=0.0)
    with pytest.raises(ValueError):
        ConfidencePolicy(min_count=1)


def test_normal_halfwidth():
    assert normal_halfwidth(1.0, 100) == pytest.approx(0.196)
    with pytest.raises(ValueError):
        normal_halfwidth(1.0, 0)
