"""Expression compilation: SQL semantics including NULLs and tweet ops."""

import pytest

from repro.clock import VirtualClock
from repro.engine.expressions import compile_expr, contains_aggregate
from repro.engine.functions import default_registry
from repro.engine.types import EvalContext
from repro.errors import PlanError, UnknownFieldError
from repro.sql import parse

SCHEMA = ("text", "n", "m", "loc", "location", "flag")


@pytest.fixture()
def ctx():
    return EvalContext(clock=VirtualClock())


def expr_of(sql_fragment):
    """Parse a standalone expression by wrapping it in a WHERE clause."""
    stmt = parse(f"SELECT text FROM t WHERE {sql_fragment};")
    return stmt.where


def evaluate(fragment, row, ctx):
    compiled = compile_expr(expr_of(fragment), default_registry(), SCHEMA, ctx)
    return compiled(row, ctx)


def test_arithmetic(ctx):
    assert evaluate("n + m * 2", {"n": 1, "m": 3}, ctx) == 7
    assert evaluate("(n + m) * 2", {"n": 1, "m": 3}, ctx) == 8
    assert evaluate("n % m", {"n": 7, "m": 4}, ctx) == 3


def test_null_propagates_through_arithmetic(ctx):
    assert evaluate("n + m", {"n": None, "m": 3}, ctx) is None
    assert evaluate("-n", {"n": None}, ctx) is None


def test_division_by_zero_is_null(ctx):
    assert evaluate("n / m", {"n": 1, "m": 0}, ctx) is None
    assert evaluate("n / m", {"n": 7, "m": 2}, ctx) == 3.5


def test_comparisons(ctx):
    assert evaluate("n < m", {"n": 1, "m": 2}, ctx) is True
    assert evaluate("n >= m", {"n": 1, "m": 2}, ctx) is False
    assert evaluate("n != m", {"n": 1, "m": 2}, ctx) is True


def test_comparison_with_null_is_null(ctx):
    assert evaluate("n = m", {"n": None, "m": 2}, ctx) is None


def test_mixed_type_comparison_is_null_not_error(ctx):
    assert evaluate("n < m", {"n": "abc", "m": 2}, ctx) is None


def test_three_valued_and(ctx):
    assert evaluate("flag AND n = 1", {"flag": None, "n": 2}, ctx) is False
    assert evaluate("flag AND n = 1", {"flag": None, "n": 1}, ctx) is None
    assert evaluate("flag AND n = 1", {"flag": True, "n": 1}, ctx) is True


def test_three_valued_or(ctx):
    assert evaluate("flag OR n = 1", {"flag": None, "n": 1}, ctx) is True
    assert evaluate("flag OR n = 1", {"flag": None, "n": 2}, ctx) is None
    assert evaluate("flag OR n = 1", {"flag": False, "n": 2}, ctx) is False


def test_not_with_null(ctx):
    assert evaluate("NOT flag", {"flag": None}, ctx) is None
    assert evaluate("NOT flag", {"flag": False}, ctx) is True


def test_contains_case_insensitive(ctx):
    assert evaluate("text contains 'OBAMA'", {"text": "I saw Obama"}, ctx) is True
    assert evaluate("text contains 'xyz'", {"text": "I saw Obama"}, ctx) is False
    assert evaluate("text contains 'x'", {"text": None}, ctx) is None


def test_matches_regex(ctx):
    assert evaluate("text matches '^GOAL'", {"text": "GOAL! 1-0"}, ctx) is True
    assert evaluate("text matches '^GOAL'", {"text": "no goal"}, ctx) is False


def test_matches_invalid_regex_fails_at_plan_time(ctx):
    with pytest.raises(PlanError):
        compile_expr(expr_of("text matches '['"), default_registry(), SCHEMA, ctx)


def test_like_wildcards(ctx):
    assert evaluate("text like 'goal%'", {"text": "GOAL scored"}, ctx) is True
    assert evaluate("text like '%1_0%'", {"text": "now 1-0 up"}, ctx) is True
    assert evaluate("text like 'goal'", {"text": "goal!"}, ctx) is False


def test_in_list(ctx):
    assert evaluate("n IN (1, 2, 3)", {"n": 2}, ctx) is True
    assert evaluate("n IN (1, 2, 3)", {"n": 9}, ctx) is False
    assert evaluate("n IN (1, 2)", {"n": None}, ctx) is None


def test_in_bbox(ctx):
    row = {"location": (40.75, -73.98)}
    assert evaluate("location in [bounding box for NYC]", row, ctx) is True
    assert evaluate("location in [bounding box for Boston]", row, ctx) is False
    assert evaluate("location in [bounding box for NYC]", {"location": None}, ctx) is None


def test_in_bbox_unknown_name_fails_at_plan_time(ctx):
    with pytest.raises(PlanError):
        compile_expr(
            expr_of("location in [bounding box for gotham]"),
            default_registry(), SCHEMA, ctx,
        )


def test_is_null(ctx):
    assert evaluate("n IS NULL", {"n": None}, ctx) is True
    assert evaluate("n IS NOT NULL", {"n": 5}, ctx) is True


def test_unknown_field_fails_at_compile_with_hint(ctx):
    with pytest.raises(UnknownFieldError) as excinfo:
        compile_expr(expr_of("bogus = 1"), default_registry(), SCHEMA, ctx)
    assert "text" in str(excinfo.value)


def test_field_lookup_is_case_insensitive(ctx):
    assert evaluate("TEXT contains 'a'", {"text": "abc"}, ctx) is True


def test_alias_resolution(ctx):
    aliases = {"double": lambda row, _ctx: row["n"] * 2}
    compiled = compile_expr(
        expr_of("double > 5"), default_registry(), SCHEMA, ctx, aliases=aliases
    )
    assert compiled({"n": 3}, ctx) is True
    assert compiled({"n": 2}, ctx) is False


def test_function_call(ctx):
    assert evaluate("floor(n) = 3", {"n": 3.7}, ctx) is True
    assert evaluate("length(text) > 2", {"text": "abcd"}, ctx) is True


def test_nested_function_calls(ctx):
    assert evaluate("abs(floor(n)) = 4", {"n": -3.5}, ctx) is True


def test_unknown_function_raises(ctx):
    with pytest.raises(Exception) as excinfo:
        compile_expr(expr_of("nosuchfn(n) = 1"), default_registry(), SCHEMA, ctx)
    assert "nosuchfn" in str(excinfo.value)


def test_aggregate_in_scalar_position_rejected(ctx):
    with pytest.raises(PlanError):
        compile_expr(expr_of("avg(n) > 1"), default_registry(), SCHEMA, ctx)


def test_contains_aggregate_helper():
    assert contains_aggregate(expr_of("avg(n) > 1"))
    assert not contains_aggregate(expr_of("floor(n) > 1"))


def test_stateful_udf_instances_are_per_site(ctx):
    """Two meandev() call sites keep independent running state."""
    registry = default_registry()
    tokens_a = compile_expr(expr_of("meandev(n) >= 0"), registry, SCHEMA, ctx)
    # Feed site A a history so its mean is established.
    for value in (10, 10, 10):
        tokens_a({"n": value}, ctx)
    tokens_b = compile_expr(expr_of("meandev(n) >= 0"), registry, SCHEMA, ctx)
    # Site B starts fresh: its first observation scores 0 deviation.
    assert tokens_b({"n": 1000}, ctx) is True
