"""Tweet-count windows (``WINDOW n TWEETS``)."""

import pytest

from repro.clock import VirtualClock
from repro.engine import operators as ops
from repro.engine.aggregates import make_aggregate
from repro.engine.types import EvalContext, batch_rows, iter_rows
from repro.errors import ParseError, PlanError
from repro.sql import parse
from repro.sql.ast import WindowSpec


def test_parse_count_window():
    stmt = parse("SELECT COUNT(*) FROM twitter WINDOW 500 TWEETS;")
    assert stmt.window.count_based
    assert stmt.window.size_count == 500
    assert stmt.window.tumbling


def test_parse_sliding_count_window():
    stmt = parse("SELECT COUNT(*) FROM twitter WINDOW 100 TWEETS EVERY 20 TWEETS;")
    assert stmt.window.slide == 20
    assert not stmt.window.tumbling


def test_parse_rejects_mixed_units():
    with pytest.raises(ParseError):
        parse("SELECT COUNT(*) FROM twitter WINDOW 100 TWEETS EVERY 1 minutes;")
    with pytest.raises(ParseError):
        parse("SELECT COUNT(*) FROM twitter WINDOW 5 minutes EVERY 20 TWEETS;")


def test_parse_rejects_fractional_count():
    with pytest.raises(ParseError):
        parse("SELECT COUNT(*) FROM twitter WINDOW 1.5 TWEETS;")


def test_count_window_round_trips():
    stmt = parse("SELECT COUNT(*) FROM twitter WINDOW 100 TWEETS EVERY 20 TWEETS;")
    assert parse(stmt.to_sql()) == stmt


def test_windowspec_validates_exactly_one_size():
    with pytest.raises(ValueError):
        WindowSpec()
    with pytest.raises(ValueError):
        WindowSpec(size_seconds=10.0, size_count=5)


def make_operator(rows, ctx, size, slide=None, group=None):
    spec = WindowSpec(size_count=size, slide_count=slide)
    agg_factories = [
        (lambda: make_aggregate("count", False, True), None, False),
        (
            lambda: make_aggregate("sum", False, False),
            lambda r, _c: r.get("x"),
            True,
        ),
    ]
    output = [
        ("n", lambda r, _c: r["__agg0"]),
        ("total", lambda r, _c: r["__agg1"]),
    ]
    if group:
        output.append(("key", lambda r, _c: r.get("k")))
    return iter_rows(
        ops.CountWindowedAggregateOperator(
            batch_rows(rows, 4), spec, group or [], agg_factories, output, ctx
        )
    )


@pytest.fixture()
def ctx():
    return EvalContext(clock=VirtualClock(start=0.0))


def rows_n(n):
    return [{"created_at": float(i), "x": 1} for i in range(n)]


def test_tumbling_count_window_exact_sizes(ctx):
    out = list(make_operator(rows_n(25), ctx, size=10))
    assert [r["n"] for r in out] == [10, 10, 5]
    assert out[0]["window_start"] == 0.0
    assert out[0]["window_end"] == 9.0
    assert out[0]["window_rows"] == 10


def test_sliding_count_window_overlap(ctx):
    out = list(make_operator(rows_n(30), ctx, size=20, slide=10))
    # Windows start at 0, 10, 20 → sizes 20, 20, 10.
    assert [r["n"] for r in out] == [20, 20, 10]


def test_count_window_grouping(ctx):
    rows = [
        {"created_at": float(i), "x": 1, "k": "a" if i % 2 == 0 else "b"}
        for i in range(10)
    ]
    out = list(
        make_operator(rows, ctx, size=10, group=[lambda r, _c: r["k"]])
    )
    assert {r["key"]: r["n"] for r in out} == {"a": 5, "b": 5}


def test_count_window_in_sql(soccer_session):
    rows = soccer_session.query(
        "SELECT COUNT(*) AS n, AVG(followers) AS f FROM twitter "
        "WHERE text contains 'soccer' WINDOW 50 TWEETS;"
    ).all()
    assert rows
    # All but the final partial window hold exactly 50 tweets.
    assert all(r["n"] == 50 for r in rows[:-1])
    assert rows[-1]["n"] <= 50
    assert all(r["window_rows"] == r["n"] for r in rows)


def test_count_window_emission_times_vary_with_traffic(soccer_session):
    """The §2 critique: a count window's *duration* stretches over quiet
    periods (stale tweets) and compresses in bursts."""
    rows = soccer_session.query(
        "SELECT COUNT(*) AS n FROM twitter WHERE text contains 'goal' "
        "WINDOW 100 TWEETS;"
    ).all()
    durations = [r["window_end"] - r["window_start"] for r in rows[:-1]]
    assert durations
    if len(durations) >= 2:
        assert max(durations) > 2 * min(durations)


def test_count_window_join_rejected(soccer_session):
    soccer_session.register_source(
        "s2", lambda: iter([{"created_at": 1.0, "k": 1}]), ("created_at", "k")
    )
    with pytest.raises(PlanError):
        soccer_session.query(
            "SELECT text FROM twitter JOIN s2 ON user_id = k "
            "WINDOW 100 TWEETS;"
        )
