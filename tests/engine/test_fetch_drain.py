"""Regression: ``fetch(n)`` with n == the exact row count must still drain.

The row iterator used to release plan resources only in its ``finally``;
a caller fetching exactly the available row count left the generator
suspended on the last yield, so in-flight async service calls never
drained and their effects never reached the stats.
"""

from __future__ import annotations

from repro import EngineConfig

SQL = (
    "SELECT latitude(loc) AS lat FROM twitter "
    "WHERE text contains 'goal';"
)


def _async_session(session_factory):
    return session_factory(
        "soccer",
        config=EngineConfig(latency_mode="async", partial_results=False),
    )


def test_fetch_exact_row_count_drains_async_services(session_factory):
    baseline = _async_session(session_factory).query(SQL)
    try:
        total = len(baseline.all())
        expected = baseline.service_stats
    finally:
        baseline.close()
    assert total > 0

    handle = _async_session(session_factory).query(SQL)
    try:
        rows = handle.fetch(total)
        assert len(rows) == total
        # Without pulling past the end or closing: stats must already
        # reflect every in-flight request having completed.
        assert handle.service_stats == expected
    finally:
        handle.close()


def test_fetch_exact_row_count_releases_resources(session_factory):
    handle = _async_session(session_factory).query(SQL)
    try:
        total = len(handle.all())
    finally:
        handle.close()

    handle = _async_session(session_factory).query(SQL)
    try:
        handle.fetch(total)
        assert handle._released
        for connection in handle.connections:
            assert connection._closed
    finally:
        handle.close()
