"""Planner decisions: conjunct splitting, API candidates, plan errors."""

import pytest

from repro import EngineConfig, TweeQL
from repro.engine.planner import (
    extract_api_candidates,
    split_conjuncts,
)
from repro.errors import PlanError, UnknownSourceError
from repro.sql import parse


def where_of(sql):
    return parse(sql).where


def test_split_conjuncts_flattens_ands():
    where = where_of("SELECT text FROM t WHERE a = 1 AND b = 2 AND c = 3;")
    assert len(split_conjuncts(where)) == 3


def test_split_conjuncts_keeps_or_whole():
    where = where_of("SELECT text FROM t WHERE a = 1 OR b = 2;")
    assert len(split_conjuncts(where)) == 1


def test_split_none():
    assert split_conjuncts(None) == []


def test_extract_track_candidate():
    conjuncts = split_conjuncts(
        where_of("SELECT text FROM t WHERE text contains 'obama' AND followers > 5;")
    )
    found = extract_api_candidates(conjuncts)
    assert len(found) == 1
    index, candidate = found[0]
    assert index == 0
    assert candidate.kind == "track"
    assert candidate.api_kwargs == {"track": ("obama",)}


def test_extract_or_of_contains_as_multi_keyword_track():
    conjuncts = split_conjuncts(
        where_of(
            "SELECT text FROM t WHERE (text contains 'a' OR text contains 'b');"
        )
    )
    found = extract_api_candidates(conjuncts)
    assert found[0][1].api_kwargs == {"track": ("a", "b")}


def test_or_mixing_fields_not_api_eligible():
    conjuncts = split_conjuncts(
        where_of("SELECT text FROM t WHERE text contains 'a' OR followers > 5;")
    )
    assert extract_api_candidates(conjuncts) == []


def test_extract_bbox_candidate():
    conjuncts = split_conjuncts(
        where_of("SELECT text FROM t WHERE location in [bounding box for NYC];")
    )
    found = extract_api_candidates(conjuncts)
    assert found[0][1].kind == "locations"


def test_extract_follow_candidates():
    eq = split_conjuncts(where_of("SELECT text FROM t WHERE user_id = 7;"))
    inlist = split_conjuncts(
        where_of("SELECT text FROM t WHERE user_id IN (7, 8);")
    )
    assert extract_api_candidates(eq)[0][1].kind == "follow"
    assert extract_api_candidates(inlist)[0][1].api_kwargs == {"follow": (8, 7)} or \
        extract_api_candidates(inlist)[0][1].api_kwargs == {"follow": (7, 8)}


def test_contains_on_other_field_stays_local():
    conjuncts = split_conjuncts(
        where_of("SELECT text FROM t WHERE loc contains 'boston';")
    )
    assert extract_api_candidates(conjuncts) == []


# --- plan-level behaviour through a session ---------------------------------


def test_unknown_source(soccer_session):
    with pytest.raises(UnknownSourceError):
        soccer_session.query("SELECT x FROM nowhere;")


def test_aggregate_without_window_rejected(soccer_session):
    with pytest.raises(PlanError) as excinfo:
        soccer_session.query(
            "SELECT COUNT(*) FROM twitter WHERE text contains 'soccer';"
        )
    assert "WINDOW" in str(excinfo.value)


def test_having_without_aggregate_rejected(soccer_session):
    with pytest.raises(PlanError):
        soccer_session.query(
            "SELECT text FROM twitter WHERE text contains 'a' HAVING COUNT(*) > 1;"
        )


def test_order_by_without_aggregate_rejected(soccer_session):
    with pytest.raises(PlanError):
        soccer_session.query(
            "SELECT text FROM twitter WHERE text contains 'a' ORDER BY text;"
        )


def test_select_star_with_aggregate_rejected(soccer_session):
    with pytest.raises(PlanError):
        soccer_session.query(
            "SELECT *, COUNT(*) FROM twitter WHERE text contains 'a' WINDOW 1 minutes;"
        )


def test_join_without_window_rejected(soccer_session):
    soccer_session.register_source("other", lambda: iter(()), ("created_at", "k"))
    with pytest.raises(PlanError):
        soccer_session.query(
            "SELECT text FROM twitter JOIN other ON user_id = k;"
        )


def test_explain_names_api_filter(soccer_session):
    text = soccer_session.explain(
        "SELECT text FROM twitter WHERE text contains 'tevez' AND followers > 10;"
    )
    assert "track(tevez)" in text
    assert "followers" in text


def test_explain_shows_selectivity_estimates(soccer_session):
    text = soccer_session.explain(
        "SELECT text FROM twitter WHERE text contains 'tevez' "
        "AND location in [bounding box for NYC];"
    )
    assert "selectivity" in text


def test_chosen_conjunct_removed_from_local_filter(soccer_session):
    plan = soccer_session.plan(
        "SELECT text FROM twitter WHERE text contains 'tevez';"
    )
    # Only the API filter line; no local Filter line.
    assert not any(line.startswith("Filter") for line in plan.explain_lines)


def test_firehose_fallback_when_no_candidates(soccer_session):
    text = soccer_session.explain("SELECT text FROM twitter;")
    assert "firehose" in text


def test_eddy_appears_in_explain(soccer):
    session = TweeQL.for_scenarios(soccer, config=EngineConfig(use_eddy=True))
    text = session.explain(
        "SELECT text FROM twitter WHERE text contains 'tevez' "
        "AND followers > 10 AND lang = 'en';"
    )
    assert "eddy" in text


def test_registered_source_schema_validated(soccer_session):
    soccer_session.register_source(
        "static", lambda: iter([{"created_at": 1.0, "x": 1}]), ("created_at", "x")
    )
    rows = soccer_session.query("SELECT x FROM static;").all()
    assert rows[0]["x"] == 1
    with pytest.raises(Exception):
        soccer_session.query("SELECT bogus FROM static;")


def test_cannot_shadow_twitter(soccer_session):
    with pytest.raises(PlanError):
        soccer_session.register_source("twitter", lambda: iter(()), ("created_at",))
