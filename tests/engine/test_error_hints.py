"""Unknown-name errors must always carry actionable hints.

Every raise site for :class:`UnknownFieldError` /
:class:`UnknownSourceError` passes the candidate names, and
:class:`UnknownFunctionError` carries a did-you-mean suggestion, so a
user who typos a name is told what the valid options were — whether the
error arrives via ``session.query`` or the function registry directly.
"""

import pytest

from repro import TweeQL
from repro.engine.functions import default_registry
from repro.errors import (
    UnknownFieldError,
    UnknownFunctionError,
    UnknownSourceError,
)
from repro.twitter.models import TWITTER_SCHEMA


@pytest.fixture
def session(soccer_session):
    return soccer_session


def test_field_typo_in_select_lists_available(session):
    with pytest.raises(UnknownFieldError) as excinfo:
        session.query("SELECT txet FROM twitter WHERE text CONTAINS 'a';")
    err = excinfo.value
    assert err.name == "txet"
    assert err.available == tuple(sorted(TWITTER_SCHEMA))
    assert "available:" in str(err)
    assert "text" in str(err)
    assert err.code == "TQL201"


def test_field_typo_in_where_lists_available(session):
    with pytest.raises(UnknownFieldError) as excinfo:
        session.query("SELECT text FROM twitter WHERE folowers > 1;")
    assert excinfo.value.available == tuple(sorted(TWITTER_SCHEMA))


def test_field_typo_in_group_by_lists_available(session):
    with pytest.raises(UnknownFieldError) as excinfo:
        session.query(
            "SELECT count(*) AS n FROM twitter WHERE text CONTAINS 'a' "
            "GROUP BY lagn WINDOW 1 minutes;"
        )
    err = excinfo.value
    assert err.name == "lagn"
    assert err.available


def test_custom_source_schema_drives_available():
    session = TweeQL()
    session.register_source("s", lambda: iter(()), ("alpha", "beta"))
    with pytest.raises(UnknownFieldError) as excinfo:
        session.query("SELECT gamma FROM s;")
    assert excinfo.value.available == ("alpha", "beta")


def test_unknown_source_lists_registered_sources(session):
    with pytest.raises(UnknownSourceError) as excinfo:
        session.query("SELECT text FROM twimmer WHERE text CONTAINS 'a';")
    err = excinfo.value
    assert err.name == "twimmer"
    assert "twitter" in err.available
    assert "available:" in str(err)
    assert err.code == "TQL212"


def test_unknown_function_offers_did_you_mean(session):
    with pytest.raises(UnknownFunctionError) as excinfo:
        session.query(
            "SELECT sentimant(text) FROM twitter WHERE text CONTAINS 'a';"
        )
    err = excinfo.value
    assert err.name == "sentimant"
    assert "sentiment" in (err.hint or "")
    assert err.code == "TQL202"


def test_registry_lookup_hint_direct():
    registry = default_registry()
    with pytest.raises(UnknownFunctionError) as excinfo:
        registry.lookup("lenght")
    assert "length" in (excinfo.value.hint or "")


def test_error_carries_diagnostic_with_span(session):
    sql = "SELECT txet FROM twitter WHERE text CONTAINS 'a';"
    with pytest.raises(UnknownFieldError) as excinfo:
        session.query(sql)
    diag = excinfo.value.diagnostic
    assert diag is not None
    assert diag.code == "TQL201"
    assert sql[diag.span.start : diag.span.end] == "txet"
