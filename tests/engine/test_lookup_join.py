"""Stream-table (lookup) joins."""

import pytest

from repro.errors import PlanError


TEAMS = [
    {"team": "manchester city", "home": "Manchester"},
    {"team": "liverpool", "home": "Liverpool"},
]


@pytest.fixture()
def session(soccer_session):
    soccer_session.register_source(
        "teams", lambda: iter([dict(r) for r in TEAMS]), ("team", "home")
    )
    soccer_session.register_source(
        "mentions",
        lambda: iter(
            [
                {"created_at": 1.0, "team": "liverpool", "n": 3},
                {"created_at": 2.0, "team": "manchester city", "n": 5},
                {"created_at": 3.0, "team": "everton", "n": 1},
            ]
        ),
        ("created_at", "team", "n"),
    )
    return soccer_session


def test_lookup_join_enriches_stream(session):
    rows = session.query(
        "SELECT n, home FROM mentions JOIN teams ON team = team;"
    ).all()
    assert {(r["n"], r["home"]) for r in rows} == {
        (3, "Liverpool"), (5, "Manchester")
    }


def test_lookup_join_is_inner(session):
    rows = session.query(
        "SELECT n FROM mentions JOIN teams ON team = team;"
    ).all()
    assert len(rows) == 2  # 'everton' has no dimension row


def test_lookup_join_needs_no_window(session):
    # No WINDOW clause, and it plans fine because 'teams' is a table.
    text = session.explain(
        "SELECT n, home FROM mentions JOIN teams ON team = team;"
    )
    assert "lookup" in text


def test_stream_stream_join_still_requires_window(session):
    session.register_source(
        "other_stream",
        lambda: iter([{"created_at": 1.0, "team": "liverpool"}]),
        ("created_at", "team"),
    )
    with pytest.raises(PlanError):
        session.query(
            "SELECT n FROM mentions JOIN other_stream ON team = team;"
        )


def test_lookup_join_from_twitter(session):
    """Dimension-enrich live tweets: screen_name → segment."""
    session.register_source(
        "vips",
        lambda: iter([{"who": "user1", "segment": "vip"}]),
        ("who", "segment"),
    )
    rows = session.query(
        "SELECT screen_name, segment FROM twitter JOIN vips "
        "ON screen_name = who WHERE text contains 'soccer' LIMIT 3;"
    ).all()
    for row in rows:
        assert row["screen_name"] == "user1"
        assert row["segment"] == "vip"


def test_lookup_join_colliding_columns_prefixed(session):
    session.register_source(
        "dim",
        lambda: iter([{"team": "liverpool", "n": 99}]),
        ("team", "n"),
    )
    rows = session.query(
        "SELECT n, r_n FROM mentions JOIN dim ON team = team;"
    ).all()
    assert rows == [{"n": 3, "r_n": 99, "created_at": 1.0}]
