"""Builtin functions and the registry."""

import pytest

from repro.clock import DEFAULT_EPOCH, VirtualClock
from repro.engine.functions import MeanDevUDF, default_registry
from repro.engine.types import EvalContext
from repro.errors import UnknownFunctionError


@pytest.fixture()
def ctx():
    return EvalContext(clock=VirtualClock())


def call(name, ctx, *args):
    spec = default_registry().lookup(name)
    return spec.impl(ctx, *args)


def test_math_builtins(ctx):
    assert call("floor", ctx, 3.7) == 3
    assert call("ceil", ctx, 3.2) == 4
    assert call("round", ctx, 3.456, 2) == 3.46
    assert call("abs", ctx, -2) == 2
    assert call("sqrt", ctx, 9) == 3.0


def test_string_builtins(ctx):
    assert call("lower", ctx, "ABC") == "abc"
    assert call("upper", ctx, "abc") == "ABC"
    assert call("length", ctx, "abcd") == 4
    assert call("trim", ctx, "  x ") == "x"
    assert call("replace", ctx, "a-b", "-", "+") == "a+b"
    assert call("concat", ctx, "a", 1, "b") == "a1b"


def test_substr_one_indexed(ctx):
    assert call("substr", ctx, "abcdef", 2, 3) == "bcd"
    assert call("substr", ctx, "abcdef", 3) == "cdef"


def test_nullsafe_wrappers(ctx):
    assert call("floor", ctx, None) is None
    assert call("lower", ctx, None) is None
    assert call("substr", ctx, None, 1) is None


def test_coalesce(ctx):
    assert call("coalesce", ctx, None, None, 5, 6) == 5
    assert call("coalesce", ctx, None) is None


def test_if(ctx):
    assert call("if", ctx, True, "a", "b") == "a"
    assert call("if", ctx, 0, "a", "b") == "b"


def test_first_url(ctx):
    assert call("first_url", ctx, "go http://bit.ly/x now") == "http://bit.ly/x"
    assert call("first_url", ctx, "no links") is None


def test_hashtags(ctx):
    assert call("hashtags", ctx, "#A and #b") == ("a", "b")


def test_point(ctx):
    assert call("point", ctx, 1.0, 2.0) == (1.0, 2.0)
    assert call("point", ctx, None, 2.0) is None


def test_temporal(ctx):
    assert call("hour", ctx, DEFAULT_EPOCH) == 0
    assert call("minute", ctx, DEFAULT_EPOCH + 90) == 1
    assert call("day", ctx, DEFAULT_EPOCH) == 12
    assert call("format_time", ctx, DEFAULT_EPOCH) == "2011-06-12 00:00:00"


def test_now_reads_stream_time(ctx):
    ctx.stream_time = 123.0
    assert call("now", ctx) == 123.0


def test_sentiment_uses_service(ctx):
    ctx.services["sentiment"] = lambda text: 1 if "good" in text else -1
    assert call("sentiment", ctx, "good day") == 1
    assert call("sentiment", ctx, "bad day") == -1
    assert call("sentiment", ctx, None) is None


def test_latitude_longitude_use_geocode_service(ctx):
    ctx.services["geocode"] = lambda loc: (42.0, -71.0)
    assert call("latitude", ctx, "Boston") == 42.0
    assert call("longitude", ctx, "Boston") == -71.0
    assert call("latitude", ctx, "") is None
    ctx.services["geocode"] = lambda loc: None
    assert call("latitude", ctx, "nowhere") is None


def test_missing_service_raises_clear_error(ctx):
    with pytest.raises(KeyError) as excinfo:
        call("sentiment", ctx, "text")
    assert "sentiment" in str(excinfo.value)


def test_named_entities(ctx):
    ctx.services["entities"] = lambda text: ["obama/Person"]
    assert call("named_entities", ctx, "obama spoke") == ("obama/Person",)


def test_registry_lookup_unknown():
    with pytest.raises(UnknownFunctionError):
        default_registry().lookup("definitely_not_a_function")


def test_registry_register_and_replace():
    registry = default_registry()
    registry.register("twice", lambda _ctx, x: x * 2)
    assert registry.lookup("twice").impl(None, 4) == 8
    # Intentional override requires the explicit flag.
    registry.register("twice", lambda _ctx, x: x * 3, replace=True)
    assert registry.lookup("twice").impl(None, 4) == 12


def test_registry_register_guards_accidental_shadowing():
    registry = default_registry()
    with pytest.raises(ValueError, match="already registered"):
        registry.register("sentiment", lambda _ctx, s: 0)
    # Name matching is case-insensitive, so this shadows too.
    registry.register("twice", lambda _ctx, x: x * 2)
    with pytest.raises(ValueError, match="replace=True"):
        registry.register("TWICE", lambda _ctx, x: x * 3)
    assert registry.lookup("twice").impl(None, 4) == 8


def test_registry_names_sorted():
    names = default_registry().names()
    assert list(names) == sorted(names)
    assert "sentiment" in names


def test_high_latency_flags():
    registry = default_registry()
    assert registry.lookup("latitude").high_latency
    assert registry.lookup("named_entities").high_latency
    assert not registry.lookup("sentiment").high_latency


def test_meandev_scores_spikes(ctx):
    udf = MeanDevUDF(alpha=0.2)
    for _ in range(20):
        udf(ctx, 10.0)
    spike_score = udf(ctx, 100.0)
    assert spike_score > 2.0
    calm_score = MeanDevUDF()(ctx, 10.0)
    assert calm_score == 0.0


def test_meandev_null_passthrough(ctx):
    assert MeanDevUDF()(ctx, None) is None
