"""Chrome-trace export: structure and byte determinism."""

from __future__ import annotations

import json

import pytest

from repro.obs import chrome_trace, write_chrome_trace

from tests.obs.conftest import GROUPED_SQL, static_session


def _run_trace(workers: int, batch_size: int) -> dict:
    session = static_session(workers=workers, batch_size=batch_size)
    handle = session.query(GROUPED_SQL)
    try:
        handle.all()
        return handle.chrome_trace()
    finally:
        handle.close()


@pytest.mark.parametrize(
    ("workers", "batch_size"),
    [(1, 1), (1, 256), (4, 1), (4, 256)],
    ids=["w1_b1", "w1_b256", "w4_b1", "w4_b256"],
)
def test_trace_is_byte_deterministic(workers, batch_size):
    first = json.dumps(_run_trace(workers, batch_size), sort_keys=True)
    second = json.dumps(_run_trace(workers, batch_size), sort_keys=True)
    assert first == second


def test_document_structure():
    document = _run_trace(workers=1, batch_size=256)
    assert document["displayTimeUnit"] == "ms"
    events = document["traceEvents"]
    metadata = [e for e in events if e["ph"] == "M"]
    spans = [e for e in events if e["ph"] == "X"]
    assert {e["name"] for e in metadata} >= {"process_name", "thread_name"}
    assert spans, "a run must record spans"
    for event in spans:
        assert event["ts"] >= 0
        assert event["dur"] >= 0
        assert event["cat"]
    # Batch spans link back to their operator span.
    batch_events = [e for e in spans if e["cat"] == "batch"]
    assert batch_events
    assert all("parent" in e["args"] for e in batch_events)


def test_sharded_trace_names_every_lane():
    document = _run_trace(workers=4, batch_size=256)
    lanes = {
        event["args"]["name"]
        for event in document["traceEvents"]
        if event["ph"] == "M" and event["name"] == "thread_name"
    }
    assert {"exchange", "merge"} <= lanes
    assert {f"worker-{i}" for i in range(4)} <= lanes


def test_multi_query_export_gets_one_pid_per_query(tmp_path):
    session_a = static_session()
    session_b = static_session()
    handle_a = session_a.query(GROUPED_SQL)
    handle_b = session_b.query(GROUPED_SQL)
    try:
        handle_a.all()
        handle_b.all()
        path = tmp_path / "trace.json"
        write_chrome_trace(
            [("first", handle_a.tracer), ("second", handle_b.tracer)],
            str(path),
        )
    finally:
        handle_a.close()
        handle_b.close()
    text = path.read_text(encoding="utf-8")
    assert text.endswith("\n")
    document = json.loads(text)
    pids = {event["pid"] for event in document["traceEvents"]}
    assert pids == {1, 2}
    names = {
        event["args"]["name"]
        for event in document["traceEvents"]
        if event["name"] == "process_name"
    }
    assert names == {"first", "second"}


def test_single_tracer_accepted_directly():
    session = static_session()
    handle = session.query(GROUPED_SQL)
    try:
        handle.all()
        document = chrome_trace(handle.tracer, process_name="solo")
    finally:
        handle.close()
    (process_event,) = [
        e for e in document["traceEvents"] if e["name"] == "process_name"
    ]
    assert process_event["args"]["name"] == "solo"
