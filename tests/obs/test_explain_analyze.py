"""Golden EXPLAIN ANALYZE renderings and span/stats reconciliation.

The batch-size × worker-count grid runs over the static ``fixed`` source
(the clock never advances, so even sharded renderings are deterministic).
Regenerate after an intentional change with::

    UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/obs/test_explain_analyze.py
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro import EngineConfig
from repro.errors import ExecutionError
from repro.obs import reconcile

from tests.obs.conftest import GROUPED_SQL, static_session

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

GRID = [(1, 1), (1, 256), (4, 1), (4, 256)]


def _check_golden(name: str, rendered: str) -> None:
    path = GOLDEN_DIR / f"{name}.txt"
    if os.environ.get("UPDATE_GOLDEN"):
        path.write_text(rendered + "\n", encoding="utf-8")
    assert rendered + "\n" == path.read_text(encoding="utf-8")


@pytest.mark.parametrize(
    ("workers", "batch_size"), GRID,
    ids=[f"w{w}_b{b}" for w, b in GRID],
)
def test_golden_rendering(workers, batch_size):
    session = static_session(workers=workers, batch_size=batch_size)
    handle = session.query(GROUPED_SQL)
    try:
        rows = handle.all()
        rendered = handle.explain(analyze=True)
    finally:
        handle.close()
    assert len(rows) == 5
    _check_golden(f"analyze_w{workers}_b{batch_size}", rendered)


@pytest.mark.parametrize(
    ("workers", "batch_size"), GRID,
    ids=[f"w{w}_b{b}" for w, b in GRID],
)
def test_reconcile_across_grid(workers, batch_size):
    session = static_session(workers=workers, batch_size=batch_size)
    handle = session.query(GROUPED_SQL)
    try:
        handle.all()
        report = reconcile(handle)
    finally:
        handle.close()
    assert report["ok"], report


def test_golden_serial_scenario_with_services(session_factory):
    """Real virtual-clock timings and a services section, still golden —
    serial plans are fully deterministic."""
    session = session_factory(
        "soccer",
        config=EngineConfig(tracing=True, latency_mode="cached"),
    )
    sql = (
        "SELECT latitude(loc) AS lat FROM twitter "
        "WHERE text contains 'goal';"
    )
    handle = session.query(sql)
    try:
        rendered = handle.explain(analyze=True)
    finally:
        handle.close()
    assert "services:" in rendered and "geocode:" in rendered
    _check_golden("analyze_soccer_serial", rendered)


def test_analyze_requires_tracing():
    session = static_session(tracing=False)
    handle = session.query(GROUPED_SQL)
    try:
        handle.all()
        with pytest.raises(ExecutionError, match="tracing"):
            handle.explain(analyze=True)
    finally:
        handle.close()


def test_session_explain_analyze_forces_tracing():
    session = static_session(tracing=False)
    rendered = session.explain(GROUPED_SQL, analyze=True)
    assert "-- EXPLAIN ANALYZE" in rendered
    assert "query totals:" in rendered


def test_analyze_totals_match_query_stats():
    """The rendered totals line is exactly QueryStats.as_dict()."""
    session = static_session(workers=4, batch_size=256)
    handle = session.query(GROUPED_SQL)
    try:
        handle.all()
        rendered = handle.explain(analyze=True)
        stats = handle.stats.as_dict()
    finally:
        handle.close()
    totals_line = next(
        line for line in rendered.splitlines()
        if line.startswith("query totals: ")
    )
    expected = " ".join(f"{k}={v}" for k, v in stats.items())
    assert totals_line == "query totals: " + expected


def test_every_golden_file_has_a_case():
    expected = {f"analyze_w{w}_b{b}.txt" for w, b in GRID}
    expected.add("analyze_soccer_serial.txt")
    on_disk = {p.name for p in GOLDEN_DIR.glob("*.txt")}
    assert on_disk == expected
