"""Property test: the trace is an independent recount of the same stream.

For any row count, predicate threshold, batch size, and worker count, the
probe totals must reconcile exactly with the engine's own ``QueryStats``
counters, and the traced output must equal the untraced output.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import EngineConfig, TweeQL
from repro.obs import reconcile

SCHEMA = ("text", "user_id", "created_at")


def _session(n_rows: int, workers: int, batch_size: int, tracing: bool):
    rows = [
        {"text": f"tweet {i}", "user_id": i % 11, "created_at": 0.0}
        for i in range(n_rows)
    ]
    config = EngineConfig(
        workers=workers, batch_size=batch_size, tracing=tracing
    )
    session = TweeQL(config=config)
    session.register_source("fixed", lambda: iter(rows), SCHEMA)
    return session


@settings(max_examples=20, deadline=None)
@given(
    n_rows=st.integers(min_value=1, max_value=300),
    threshold=st.integers(min_value=0, max_value=12),
    batch_size=st.sampled_from([1, 3, 64, 256]),
    workers=st.sampled_from([1, 2, 4]),
)
def test_probes_reconcile_with_query_stats(
    n_rows, threshold, batch_size, workers
):
    sql = (
        f"SELECT count(*) AS n FROM fixed WHERE user_id > {threshold} "
        "GROUP BY user_id WINDOW 60 seconds;"
    )
    handle = _session(n_rows, workers, batch_size, tracing=True).query(sql)
    try:
        traced_rows = handle.all()
        report = reconcile(handle)
    finally:
        handle.close()
    assert report["ok"], report

    untraced = _session(n_rows, workers, batch_size, tracing=False).query(sql)
    try:
        assert untraced.all() == traced_rows
    finally:
        untraced.close()
