"""Shared observability-test helpers.

Sharded traces are only byte-deterministic when the source never advances
the virtual clock (worker timestamps otherwise race), so the golden and
determinism tests run against ``fixed``: a registered static source of
1000 pre-stamped rows, all at t=0.
"""

from __future__ import annotations

from repro import EngineConfig, TweeQL

N_ROWS = 1000
SCHEMA = ("text", "user_id", "created_at")
ROWS = [
    {"text": f"tweet {i}", "user_id": i % 7, "created_at": 0.0}
    for i in range(N_ROWS)
]

#: Exercises scan, filter, grouped windowed aggregation, and (sharded)
#: the exchange/merge machinery — 5 output groups at every config.
GROUPED_SQL = (
    "SELECT count(*) AS n FROM fixed WHERE user_id > 1 "
    "GROUP BY user_id WINDOW 60 seconds;"
)


def static_session(
    workers: int = 1,
    batch_size: int = 256,
    tracing: bool = True,
    **config_kwargs,
) -> TweeQL:
    """A session over the static ``fixed`` source (no twitter stream)."""
    config = EngineConfig(
        workers=workers,
        batch_size=batch_size,
        tracing=tracing,
        **config_kwargs,
    )
    session = TweeQL(config=config)
    session.register_source("fixed", lambda: iter(ROWS), SCHEMA)
    return session
