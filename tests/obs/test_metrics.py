"""Unit tests for the metrics registry and the Prometheus exporter."""

from __future__ import annotations

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_prometheus,
)


def test_counter_only_goes_up():
    counter = Counter()
    counter.inc()
    counter.inc(2.5)
    assert counter.as_value() == 3.5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_moves_both_ways():
    gauge = Gauge()
    gauge.set(10)
    gauge.inc(5)
    gauge.dec(12)
    assert gauge.as_value() == 3


def test_histogram_buckets_are_cumulative():
    histogram = Histogram(buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 0.7, 5.0):
        histogram.observe(value)
    snapshot = histogram.as_value()
    assert snapshot["count"] == 4
    assert snapshot["sum"] == pytest.approx(6.25)
    assert snapshot["buckets"] == {"le_0.1": 1, "le_1": 3, "le_inf": 4}


def test_registry_get_or_create_returns_same_metric():
    registry = MetricsRegistry()
    assert registry.counter("a.b") is registry.counter("a.b")
    with pytest.raises(TypeError):
        registry.gauge("a.b")


def test_absorb_nests_and_snapshot_rebuilds_the_tree():
    registry = MetricsRegistry()
    registry.absorb(
        "service.geocoder",
        {"calls": 10, "cache": {"hits": 7, "hit_rate": 0.7}, "name": "x"},
    )
    tree = registry.snapshot()
    assert tree == {
        "service": {
            "geocoder": {"calls": 10, "cache": {"hits": 7, "hit_rate": 0.7}}
        }
    }
    assert registry.flat()["service.geocoder.cache.hits"] == 7


def test_absorb_overwrites_instead_of_double_counting():
    registry = MetricsRegistry()
    registry.absorb("query", {"rows": 5})
    registry.absorb("query", {"rows": 8})
    assert registry.flat()["query.rows"] == 8


def test_render_prometheus_gauges_and_histograms():
    registry = MetricsRegistry()
    registry.gauge("query.rows-scanned").set(41.0)
    histogram = registry.histogram("service.latency", buckets=(0.5,))
    histogram.observe(0.25)
    histogram.observe(2.0)
    text = render_prometheus(registry)
    assert "# TYPE tweeql_query_rows_scanned gauge" in text
    assert "tweeql_query_rows_scanned 41" in text
    assert "# TYPE tweeql_service_latency histogram" in text
    assert 'tweeql_service_latency_bucket{le="0.5"} 1' in text
    assert 'tweeql_service_latency_bucket{le="+Inf"} 2' in text
    assert "tweeql_service_latency_sum 2.25" in text
    assert "tweeql_service_latency_count 2" in text
    assert text.endswith("\n")
