"""Tracing must be output-neutral: traced and untraced runs match row-for-row."""

from __future__ import annotations

import pytest

from repro import EngineConfig

from tests.obs.conftest import GROUPED_SQL, static_session


def _rows(tracing: bool, workers: int, batch_size: int) -> list[dict]:
    session = static_session(
        workers=workers, batch_size=batch_size, tracing=tracing
    )
    handle = session.query(GROUPED_SQL)
    try:
        return handle.all()
    finally:
        handle.close()


@pytest.mark.parametrize(
    ("workers", "batch_size"),
    [(1, 1), (1, 256), (4, 1), (4, 256)],
    ids=["w1_b1", "w1_b256", "w4_b1", "w4_b256"],
)
def test_rows_identical_with_and_without_tracing(workers, batch_size):
    assert _rows(True, workers, batch_size) == _rows(False, workers, batch_size)


def test_scenario_rows_and_stats_identical(session_factory):
    """Also holds on a real scenario with service calls and clock advance."""
    sql = (
        "SELECT latitude(loc) AS lat FROM twitter "
        "WHERE text contains 'goal' LIMIT 40;"
    )
    results = {}
    for tracing in (False, True):
        session = session_factory(
            "soccer", config=EngineConfig(tracing=tracing)
        )
        handle = session.query(sql)
        try:
            rows = handle.all()
            stats = handle.stats.as_dict()
        finally:
            handle.close()
        results[tracing] = (rows, stats)
    assert results[True] == results[False]
