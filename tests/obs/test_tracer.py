"""Unit tests for the span recorder and the pipeline trace wrapper."""

from __future__ import annotations

from repro.engine.types import RowBatch
from repro.obs import OperatorProbe, Span, TraceOperator, Tracer


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def test_add_assigns_ids_and_per_lane_sequence():
    tracer = Tracer(FakeClock())
    a = tracer.add("a", "operator", 0.0, 1.0, lane="main")
    b = tracer.add("b", "operator", 1.0, 2.0, lane="worker-0")
    c = tracer.add("c", "batch", 2.0, 3.0, lane="main")
    assert (a.span_id, b.span_id, c.span_id) == (0, 1, 2)
    assert (a.lane_seq, b.lane_seq, c.lane_seq) == (0, 0, 1)
    assert a.duration == 1.0


def test_instant_is_zero_duration_at_now():
    clock = FakeClock(5.0)
    tracer = Tracer(clock)
    span = tracer.instant("mark", "reconnect", lane="stream", gap=3)
    assert span.start == span.end == 5.0
    assert span.attrs == {"gap": 3}


def test_started_at_is_plan_time():
    clock = FakeClock(7.5)
    tracer = Tracer(clock)
    clock.advance(1.0)
    assert tracer.started_at == 7.5


def test_spans_of_filters_and_orders_deterministically():
    tracer = Tracer(FakeClock())
    tracer.add("late", "batch", 0.0, 1.0, lane="worker-1")
    tracer.add("early", "batch", 0.0, 1.0, lane="worker-0")
    tracer.add("op", "operator", 0.0, 1.0, lane="worker-0")
    batches = tracer.spans_of("batch")
    assert [s.name for s in batches] == ["early", "late"]
    everything = tracer.sorted_spans()
    assert [s.lane for s in everything] == ["worker-0", "worker-0", "worker-1"]


def test_span_as_dict_round_trips_the_fields():
    span = Span(
        span_id=3, name="Scan", kind="operator", lane="main",
        start=0.1234567, end=1.0, lane_seq=2, parent_id=1,
        attrs={"rows": 5},
    )
    assert span.as_dict() == {
        "span_id": 3, "name": "Scan", "kind": "operator", "lane": "main",
        "start": 0.123457, "end": 1.0, "lane_seq": 2, "parent_id": 1,
        "attrs": {"rows": 5},
    }


def _ticking_source(clock: FakeClock, batches: list[RowBatch]):
    """Yields the batches, advancing the clock one second per pull."""
    for batch in batches:
        clock.advance(1.0)
        yield batch


def test_trace_operator_is_transparent_and_counts():
    clock = FakeClock()
    tracer = Tracer(clock)
    probe = tracer.probe("Scan(fixed)")
    batches = [
        RowBatch(rows=[{"a": 1}, {"a": 2}], seq=0),
        RowBatch(rows=[{"a": 3}], seq=1, last=True),
    ]
    wrapped = TraceOperator(_ticking_source(clock, batches), probe, tracer)
    assert list(wrapped) == batches  # pass-through, untouched objects
    assert (probe.rows, probe.batches) == (3, 2)
    assert probe.wall_seconds == 2.0  # one timed pull per batch

    op_spans = tracer.spans_of("operator")
    batch_spans = tracer.spans_of("batch")
    assert len(op_spans) == 1 and len(batch_spans) == 2
    assert all(s.parent_id == op_spans[0].span_id for s in batch_spans)
    assert op_spans[0].attrs["rows"] == 3
    assert op_spans[0].attrs["batches"] == 2


def test_trace_operator_without_batch_spans():
    clock = FakeClock()
    tracer = Tracer(clock, batch_spans=False)
    probe = tracer.probe("Scan(fixed)")
    batches = [RowBatch(rows=[{"a": 1}], seq=0, last=True)]
    list(TraceOperator(_ticking_source(clock, batches), probe, tracer))
    assert tracer.spans_of("batch") == []
    assert probe.rows == 1


def test_trace_operator_finalizes_span_on_generator_close():
    # A downstream LIMIT (or handle.close()) abandons the iterator without
    # exhausting it; closing must still patch the operator span.
    clock = FakeClock()
    tracer = Tracer(clock)
    probe = tracer.probe("Scan(fixed)")
    batches = [
        RowBatch(rows=[{"a": 1}], seq=0),
        RowBatch(rows=[{"a": 2}], seq=1, last=True),
    ]
    iterator = iter(TraceOperator(_ticking_source(clock, batches), probe, tracer))
    next(iterator)
    iterator.close()
    (op_span,) = tracer.spans_of("operator")
    assert op_span.attrs == {
        "rows": 1, "batches": 1, "wall_seconds": 1.0,
    }
    assert op_span.end == probe.last_ts
