"""Acceptance: EXPLAIN ANALYZE reconciles on the paper's §2 demo queries.

Real scenario, real service calls, every latency mode's default — the
probe recount must equal the engine's counters, and the rendered service
lines must match ``handle.service_stats`` (same objects, but this pins
that draining happened before rendering).
"""

from __future__ import annotations

import pytest

from repro import EngineConfig
from repro.obs import reconcile

PAPER_QUERIES = {
    "sentiment-geocode": (
        "SELECT sentiment(text), latitude(loc), longitude(loc) "
        "FROM twitter WHERE text contains 'goal';"
    ),
    "keyword-location": (
        "SELECT text FROM twitter WHERE text contains 'goal' "
        "AND location in [bounding box for NYC];"
    ),
    "regional-sentiment": (
        "SELECT AVG(sentiment(text)), floor(latitude(loc)) AS lat, "
        "floor(longitude(loc)) AS long FROM twitter "
        "WHERE text contains 'goal' GROUP BY lat, long WINDOW 3 hours;"
    ),
}


@pytest.mark.parametrize("name", list(PAPER_QUERIES))
def test_paper_query_reconciles(session_factory, name):
    session = session_factory(
        "soccer", config=EngineConfig(tracing=True)
    )
    handle = session.query(PAPER_QUERIES[name])
    try:
        rendered = handle.explain(analyze=True)
        report = reconcile(handle)
        service_stats = handle.service_stats
    finally:
        handle.close()
    assert report["ok"], report
    for service, block in service_stats.items():
        if block.get("calls"):
            assert f"{service}: calls={block['calls']}" in rendered
