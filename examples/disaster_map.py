"""Disaster mapping from tweets — the paper's first motivating application.

Run:  python examples/disaster_map.py

The paper's introduction: "the tweet stream has been used to map
disasters" (Vieweg et al., CHI 2010). This example runs the paper's
regional-aggregation query shape over the earthquake day and renders an
ASCII density/sentiment map of quake-related traffic — situational
awareness straight out of a TweeQL GROUP BY.
"""

from repro import TweeQL
from repro.twitter.users import UserPopulation
from repro.twitter.workloads import earthquake_scenario


def main() -> None:
    population = UserPopulation(size=6000, seed=23)
    scenario = earthquake_scenario(seed=23, population=population)
    session = TweeQL.for_scenarios(scenario)

    # The paper's query-3 shape: quake traffic per 10°x10° cell, whole day.
    handle = session.query(
        "SELECT COUNT(*) AS n, AVG(sentiment(text)) AS mood, "
        "floor(geo_lat / 10) AS cell_lat, floor(geo_lon / 10) AS cell_lon "
        "FROM twitter "
        "WHERE (text contains 'earthquake' OR text contains 'quake' "
        "OR text contains 'tsunami') AND geo_lat IS NOT NULL "
        "GROUP BY cell_lat, cell_lon WINDOW 1 days;"
    )
    cells: dict[tuple[int, int], int] = {}
    for row in handle.all():
        key = (int(row["cell_lat"]), int(row["cell_lon"]))
        cells[key] = cells.get(key, 0) + row["n"]

    # ASCII world map: rows from +80..-80 lat, columns -180..+170 lon.
    top = max(cells.values())
    shades = " .:+*#@"
    print("Quake-related tweet density (10°x10° cells, darker = more):\n")
    for cell_lat in range(8, -9, -1):
        line = []
        for cell_lon in range(-18, 18):
            count = cells.get((cell_lat, cell_lon), 0)
            shade = shades[
                min(len(shades) - 1, round((count / top) ** 0.5 * (len(shades) - 1)))
            ]
            line.append(shade)
        print("  " + "".join(line))
    print()

    print("Ground truth epicenters (tweets within the 3x3 cell neighborhood —")
    print("reaction centers on the nearest *population*, not the epicenter):")
    gazetteer = population.gazetteer
    for event in scenario.truth.events:
        city = gazetteer.lookup(event.info["place"])
        cell = (int(city.lat // 10), int(city.lon // 10))
        nearby = sum(
            cells.get((cell[0] + dlat, cell[1] + dlon), 0)
            for dlat in (-1, 0, 1)
            for dlon in (-1, 0, 1)
        )
        print(f"  {event.name:<32} around cell {cell}: {nearby} quake tweets")

    # Reverse-geocode the busiest cells for a situational-awareness digest.
    print("\nBusiest cells (place_name() of cell centers):")
    ranked = sorted(cells.items(), key=lambda kv: -kv[1])[:5]
    for (cell_lat, cell_lon), count in ranked:
        rows = session.query(
            f"SELECT place_name({cell_lat * 10 + 5}, {cell_lon * 10 + 5}) "
            "AS near FROM twitter LIMIT 1;"
        ).all()
        print(f"  ~{rows[0]['near']:<18} {count:>6} tweets")


if __name__ == "__main__":
    main()
