"""Red Sox vs Yankees: sentiment that varies by region, peak by peak.

Run:  python examples/baseball_regions.py

Section 3.3 of the paper: "A user should be able to quickly zoom in on
clusters of activity around New York and Boston during a Red Sox-Yankees
baseball game, with sentiment toward a given peak (e.g., a home run)
varying by region." This example builds that game and drills the map into
each home run.
"""

from repro import TweeQL
from repro.clock import format_timestamp
from repro.geo.bbox import named_box
from repro.twitinfo import TwitInfoApp
from repro.twitter.users import UserPopulation
from repro.twitter.workloads import baseball_game_scenario


def bar(polarity: float, width: int = 12) -> str:
    """Render polarity in [-1, 1] as a small signed bar."""
    filled = round(abs(polarity) * width)
    body = "█" * filled + "·" * (width - filled)
    return f"{'+' if polarity >= 0 else '-'}{body}"


def main() -> None:
    population = UserPopulation(size=3000, seed=17)
    scenario = baseball_game_scenario(seed=17, population=population)
    session = TweeQL.for_scenarios(scenario, seed=17)
    app = TwitInfoApp(session)
    event = app.track(
        "Red Sox vs Yankees",
        scenario.keywords,
        start=scenario.start,
        end=scenario.end,
    )

    print(app.dashboard(event).render_text())

    boxes = {"nyc": named_box("nyc"), "boston": named_box("boston")}

    def polarity(counts):
        positive, negative, _neutral = counts
        total = positive + negative
        return (positive - negative) / total if total else 0.0

    print("\nPer-home-run regional sentiment (drill-down into each peak):")
    print(f"{'event':<38} {'when':<20} {'NYC':<15} {'Boston':<15}")
    for truth in scenario.truth.events:
        regions = event.map.sentiment_by_region(
            boxes, truth.time, truth.time + 360
        )
        print(
            f"{truth.name:<38} {format_timestamp(truth.time):<20} "
            f"{bar(polarity(regions['nyc'])):<15} "
            f"{bar(polarity(regions['boston'])):<15}"
        )
    print("\n(The scoring team's metro lights up positive; the rival's goes "
          "negative — and the split flips with the scorer.)")


if __name__ == "__main__":
    main()
