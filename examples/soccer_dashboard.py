"""Reproduce Figure 1: the TwitInfo soccer-match dashboard.

Run:  python examples/soccer_dashboard.py [output.html]

Tracks "Soccer: Manchester City vs. Liverpool" over the simulated stream,
prints the terminal dashboard, drills into the final goal's peak (the
paper's peak "F", labeled with '3-0' and 'Tevez'), and optionally writes a
self-contained HTML page with the SVG timeline.
"""

import sys

from repro import TweeQL
from repro.twitinfo import TwitInfoApp
from repro.twitter.users import UserPopulation
from repro.twitter.workloads import soccer_match_scenario


def main() -> None:
    population = UserPopulation(size=3000, seed=11)
    scenario = soccer_match_scenario(seed=11, population=population)
    session = TweeQL.for_scenarios(scenario)
    app = TwitInfoApp(session)

    # §3.1: define the event by a keyword query + a name + a time window.
    event = app.track(
        "Soccer: Manchester City vs. Liverpool",
        scenario.keywords,
        start=scenario.start,
        end=scenario.end,
        bin_seconds=60.0,
    )

    # The full-event dashboard (Figure 1).
    dashboard = app.dashboard(event)
    print(dashboard.render_text())

    # Ground truth vs detection: which peak caught the 3-0 goal?
    final_goal = scenario.truth.events[-1]
    peak = min(event.peaks, key=lambda p: abs(p.apex_time - final_goal.time))
    print(f"\nGround truth: {final_goal.name} at t={final_goal.time:.0f}")
    print(f"Detected as peak {peak.label} with terms {peak.terms}\n")

    # §3.2: clicking a peak filters every panel to its window.
    drilled = app.dashboard(event, peak_label=peak.label)
    print(drilled.render_text())

    if len(sys.argv) > 1:
        with open(sys.argv[1], "w", encoding="utf-8") as f:
            f.write(dashboard.render_html())
        print(f"\nwrote {sys.argv[1]}")


if __name__ == "__main__":
    main()
