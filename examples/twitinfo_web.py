"""Serve TwitInfo as the web application the paper demonstrates.

Run:  python examples/twitinfo_web.py [port]

Tracks the soccer event, starts the TwitInfo web server, and prints the
URLs to open. With no port argument it binds an ephemeral port, fetches a
few pages programmatically to show the API, and exits; with a port it
keeps serving until interrupted (the actual demo experience).
"""

import json
import sys
import urllib.parse
import urllib.request

from repro import TweeQL
from repro.twitinfo import TwitInfoApp
from repro.twitinfo.server import TwitInfoServer
from repro.twitter.users import UserPopulation
from repro.twitter.workloads import soccer_match_scenario


def main() -> None:
    population = UserPopulation(size=2000, seed=11)
    scenario = soccer_match_scenario(seed=11, population=population, intensity=0.5)
    session = TweeQL.for_scenarios(scenario)
    app = TwitInfoApp(session)
    app.track(
        "Soccer: Manchester City vs. Liverpool",
        scenario.keywords,
        start=scenario.start,
        end=scenario.end,
    )

    port = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    server = TwitInfoServer(app, port=port).start()
    print(f"TwitInfo serving at {server.url}")
    print(f"  event page : {server.url}/event/Soccer%3A%20Manchester%20City%20vs.%20Liverpool")
    print(f"  JSON API   : …/event/<name>.json   peak search: …/event/<name>/peaks?q=tevez")

    if port:
        try:
            import time

            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            pass
        finally:
            server.stop()
        return

    # Ephemeral mode: demonstrate the endpoints programmatically.
    name = urllib.parse.quote("Soccer: Manchester City vs. Liverpool")
    with urllib.request.urlopen(f"{server.url}/event/{name}.json") as response:
        dashboard = json.loads(response.read())
    print(f"\nfetched dashboard JSON: {len(dashboard['timeline'])} bins, "
          f"{len(dashboard['peaks'])} peaks")
    with urllib.request.urlopen(
        f"{server.url}/event/{name}/peaks?q=tevez"
    ) as response:
        hits = json.loads(response.read())
    print("peaks matching 'tevez':",
          [(h["label"], h["terms"][:2]) for h in hits])
    server.stop()


if __name__ == "__main__":
    main()
