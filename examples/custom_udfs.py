"""Extending TweeQL with your own UDFs — what the demo invited the audience
to do ("build their own UDFs for more advanced processing").

Run:  python examples/custom_udfs.py

Registers three kinds of UDF:

1. a plain scalar (``emphasize``),
2. a stateful UDF (``running_max`` — remembers state across tuples, like
   TwitInfo's peak detector does),
3. the builtin stateful ``meandev`` — the paper's streaming mean-deviation
   primitive — used in SQL to flag goal-minute spikes directly from a
   windowed count query.
"""

from repro import TweeQL
from repro.twitter.users import UserPopulation
from repro.twitter.workloads import soccer_match_scenario


class RunningMax:
    """Stateful UDF: the largest value seen so far at this call site."""

    def __init__(self) -> None:
        self.best = None

    def __call__(self, _ctx, value):
        if value is None:
            return self.best
        if self.best is None or value > self.best:
            self.best = value
        return self.best


def main() -> None:
    population = UserPopulation(size=2000, seed=7)
    scenario = soccer_match_scenario(seed=7, population=population, intensity=0.5)
    session = TweeQL.for_scenarios(scenario)

    # 1. Scalar UDF.
    session.register_udf(
        "emphasize", lambda _ctx, s, mark="!": f"{s}{mark * 3}"
    )
    rows = session.query(
        "SELECT emphasize(screen_name) AS who FROM twitter "
        "WHERE text contains 'goal' LIMIT 3;"
    ).all()
    print("scalar UDF:", [row["who"] for row in rows])

    # 2. Stateful UDF.
    session.register_udf("running_max", RunningMax, stateful=True)
    rows = session.query(
        "SELECT running_max(followers) AS record, screen_name FROM twitter "
        "WHERE text contains 'soccer' LIMIT 8;"
    ).all()
    print("running max of follower counts:", [row["record"] for row in rows])

    # 3. meandev over windowed counts: peak detection in pure TweeQL.
    #    First aggregate counts per minute INTO a table, then stream that
    #    table through meandev — exactly how TwitInfo's "stateful TweeQL
    #    UDF" description composes.
    session.query(
        "SELECT COUNT(*) AS n FROM twitter WHERE text contains 'soccer' "
        "OR text contains 'manchester' OR text contains 'premierleague' "
        "OR text contains 'liverpool' WINDOW 1 minutes INTO per_minute;"
    ).all()
    counts = session.table("per_minute")
    session.register_source(
        "per_minute_stream",
        lambda: iter([dict(row) for row in counts]),
        ("n", "window_start", "window_end", "created_at"),
    )
    handle = session.query(
        "SELECT meandev(n) AS score, n, window_start FROM per_minute_stream;"
    )
    spikes = [row for row in handle.all() if row["score"] is not None and row["score"] > 2.0]
    print(f"\nminutes whose count spiked >2 mean deviations: {len(spikes)}")
    for row in spikes[:6]:
        print(f"  t={row['window_start']:.0f}  n={row['n']}  score={row['score']:.1f}")
    print("\n(ground truth: goals at minutes",
          [e.info["minute"] for e in scenario.truth.events], "after kickoff)")


if __name__ == "__main__":
    main()
