"""A month in Barack Obama's life — the paper's third canned demo (§4).

Run:  python examples/obama_month.py

Runs all three of the paper's §2 example queries against a month of
simulated news traffic, then builds the TwitInfo month timeline whose peaks
are the news stories, each labeled with the story's key term.
"""

from repro import TweeQL
from repro.clock import format_timestamp
from repro.twitinfo import TwitInfoApp
from repro.twitinfo.peaks import PeakDetectorParams
from repro.twitter.users import UserPopulation
from repro.twitter.workloads import news_month_scenario


def main() -> None:
    population = UserPopulation(size=2500, seed=31)
    # Two weeks at moderate intensity keeps the example under a minute while
    # preserving the story-peak structure; pass days=30 for the full month.
    scenario = news_month_scenario(
        seed=31, population=population, days=14, n_stories=4, intensity=0.2
    )
    session = TweeQL.for_scenarios(scenario)

    print("=== Paper query 1: sentiment + geocoded coordinates ===")
    handle = session.query(
        "SELECT sentiment(text), latitude(loc), longitude(loc) "
        "FROM twitter WHERE text contains 'obama';"
    )
    for row in handle.fetch(5):
        print(" ", {k: v for k, v in row.items() if not k.startswith("__")})
    handle.close()

    print("\n=== Paper query 2: keyword AND bounding box (API filter choice) ===")
    handle = session.query(
        "SELECT text FROM twitter WHERE text contains 'obama' "
        "AND location in [bounding box for NYC];"
    )
    print(handle.explain())
    for row in handle.fetch(3):
        print("  NYC:", row["text"][:70])
    handle.close()

    print("\n=== Paper query 3: 1°x1° average sentiment, 3-hour windows ===")
    handle = session.query(
        "SELECT AVG(sentiment(text)) AS mood, floor(latitude(loc)) AS lat, "
        "floor(longitude(loc)) AS long FROM twitter "
        "WHERE text contains 'obama' GROUP BY lat, long WINDOW 3 hours;"
    )
    shown = 0
    for row in handle:
        if row["lat"] is None:
            continue
        print(
            f"  window ending {format_timestamp(row['window_end'])}: "
            f"cell ({row['lat']:+.0f}, {row['long']:+.0f}) mood {row['mood']:+.2f}"
        )
        shown += 1
        if shown >= 8:
            break
    handle.close()

    print("\n=== TwitInfo: the month's timeline of stories ===")
    app = TwitInfoApp(session)
    event = app.track(
        "A month in Barack Obama's life",
        scenario.keywords,
        start=scenario.start,
        end=scenario.end,
        bin_seconds=6 * 3600.0,  # quarter-day bins for a month-long event
        detector_params=PeakDetectorParams(tau=1.5, min_count=30.0),
    )
    print(app.dashboard(event).render_text())

    print("\nStories vs peaks:")
    for story in scenario.truth.events:
        nearest = min(
            event.peaks, key=lambda p: abs(p.apex_time - story.time),
            default=None,
        )
        found = (
            f"peak {nearest.label} terms={nearest.terms}"
            if nearest is not None and abs(nearest.apex_time - story.time) < 86400
            else "MISSED"
        )
        print(f"  day {story.info['day']:>2}: {story.name:<40} → {found}")


if __name__ == "__main__":
    main()
