"""Earthquake timeline: localized spikes, maps, and confidence windowing.

Run:  python examples/earthquake_monitor.py

One of the demo's three canned scenarios (§4): a day of earthquakes. Shows
TwitInfo detecting each quake as a peak labeled with the place and
magnitude, the map clustering around epicenters, and — the §2 "Uneven
Aggregate Groups" mechanism — confidence-triggered regional sentiment that
emits dense regions quickly and ages out sparse ones.
"""

from repro import ConfidencePolicy, EngineConfig, TweeQL
from repro.clock import format_timestamp
from repro.geo.bbox import BoundingBox
from repro.twitinfo import TwitInfoApp
from repro.twitter.users import UserPopulation
from repro.twitter.workloads import earthquake_scenario


def main() -> None:
    population = UserPopulation(size=3000, seed=23)
    scenario = earthquake_scenario(seed=23, population=population)

    # --- TwitInfo event tracking -------------------------------------------------
    session = TweeQL.for_scenarios(scenario)
    app = TwitInfoApp(session)
    event = app.track(
        "Earthquake timeline",
        scenario.keywords,
        start=scenario.start,
        end=scenario.end,
        bin_seconds=300.0,  # coarser bins for a day-long event
    )
    print(app.dashboard(event).render_text())

    print("\nGround truth vs detected peaks:")
    for quake in scenario.truth.events:
        nearest = min(
            event.peaks, key=lambda p: abs(p.apex_time - quake.time),
            default=None,
        )
        if nearest is None:
            print(f"  MISSED  {quake.name}")
            continue
        gap_min = abs(nearest.apex_time - quake.time) / 60
        print(
            f"  {quake.name:<38} → peak {nearest.label} "
            f"({gap_min:.0f} min off, terms: {', '.join(nearest.terms)})"
        )

    # Map clusters near the strongest epicenter.
    strongest = max(scenario.truth.events, key=lambda e: e.info["magnitude"])
    city = population.gazetteer.lookup(strongest.info["place"])
    box = BoundingBox.around(city.lat, city.lon, radius_km=400, name=city.name)
    nearby = app.dashboard(event).markers
    in_box = [m for m in nearby if box.contains(m.lat, m.lon)]
    print(
        f"\nMap: {len(in_box)} of {len(nearby)} geotagged tweets lie within "
        f"400 km of {city.name} (M{strongest.info['magnitude']:.1f})"
    )

    # --- Confidence-triggered regional sentiment (fresh session) -------------------
    config = EngineConfig(
        confidence_policy=ConfidencePolicy(
            ci_halfwidth=0.15, max_age_seconds=2 * 3600.0
        )
    )
    session2 = TweeQL.for_scenarios(scenario, config=config)
    handle = session2.query(
        "SELECT AVG(sentiment(text)) AS mood, "
        "floor(latitude(loc) / 10) AS lat_band FROM twitter "
        "WHERE text contains 'earthquake' GROUP BY lat_band;"
    )
    print("\nConfidence-triggered regional sentiment (first 12 emissions):")
    for row in handle.fetch(12):
        band = row["lat_band"]
        label = f"{int(band) * 10:+d}°…" if band is not None else "(unknown)"
        print(
            f"  {format_timestamp(row['created_at'])}  band {label:<8} "
            f"mood {row['mood']:+.2f}  n={row['n']:<4} "
            f"ci=±{row['ci_halfwidth']}  [{row['emit_reason']}]"
        )
    handle.close()


if __name__ == "__main__":
    main()
