"""Quickstart: issue TweeQL queries against the simulated Twitter stream.

Run:  python examples/quickstart.py

Builds the soccer-match scenario from the paper's Figure 1, opens a TweeQL
session over it, and runs a few queries — including the paper's first
example query — printing streaming results.
"""

from repro import TweeQL
from repro.twitter.users import UserPopulation
from repro.twitter.workloads import soccer_match_scenario


def main() -> None:
    # A deterministic synthetic world: 2000 Twitter users, one soccer match.
    population = UserPopulation(size=2000, seed=7)
    scenario = soccer_match_scenario(seed=7, population=population, intensity=0.5)
    session = TweeQL.for_scenarios(scenario)

    print("=== 1. Keyword filter + sentiment UDF ===")
    handle = session.query(
        "SELECT sentiment(text) AS mood, text FROM twitter "
        "WHERE text contains 'tevez';"
    )
    print(handle.explain())
    for row in handle.fetch(5):
        print(f"  [{row['mood']:+d}] {row['text']}")
    handle.close()

    print("\n=== 2. The paper's first example query ===")
    handle = session.query(
        "SELECT sentiment(text), latitude(loc), longitude(loc) "
        "FROM twitter WHERE text contains 'manchester';"
    )
    for row in handle.fetch(5):
        lat = row["latitude(loc)"]
        lon = row["longitude(loc)"]
        where = f"({lat:.2f}, {lon:.2f})" if lat is not None else "(ungeocodable)"
        print(f"  sentiment={row['sentiment(text)']:+d} at {where}")
    handle.close()

    print("\n=== 3. Windowed aggregation: goals show up as volume spikes ===")
    handle = session.query(
        "SELECT COUNT(*) AS tweets, first(text) AS example FROM twitter "
        "WHERE text contains 'goal' WINDOW 10 minutes;"
    )
    for row in handle.all():
        print(f"  {row['tweets']:>5} tweets/10min   e.g. {row['example'][:60]}")

    print("\n=== 4. Register your own UDF (the demo invited this) ===")
    session.register_udf("shout", lambda _ctx, s: str(s).upper())
    handle = session.query(
        "SELECT shout(screen_name) AS who, length(text) AS n FROM twitter "
        "WHERE text contains 'liverpool' LIMIT 3;"
    )
    for row in handle.all():
        print(f"  {row['who']} wrote {row['n']} chars")

    print("\nEngine stats for the last query:", handle.stats.as_dict())


if __name__ == "__main__":
    main()
